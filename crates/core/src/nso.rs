//! The NewTop service object (NSO).
//!
//! One [`Nso`] runs beside each application object and multiplexes every
//! group its node participates in (Fig. 2 of the paper): it owns the
//! node's mini-ORB, its group-communication member, the client- and
//! server-side invocation cores, and the application's group servants.
//! Group-communication traffic, invocation messages and binding-control
//! requests all arrive as ORB traffic on the node's
//! [`newtop_gcs::NSO_OBJECT_KEY`] endpoint and are routed here.
//!
//! The NSO is sans-IO: the hosting runtime (simulator or threads) feeds
//! [`Nso::on_packet`] / [`Nso::on_timer`] and applies the queued outbox
//! actions; results surface through [`Nso::take_outputs`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use bytes::Bytes;

use newtop_gcs::group::{DeliveryOrder, FanoutMode, GroupConfig, GroupId, Liveness, OrderProtocol};
use newtop_gcs::member::{GcsError, GcsNet, GcsOutput, SendBuffer};
use newtop_gcs::messages::GcsMessage;
use newtop_gcs::shard::ShardedGcs;
use newtop_gcs::view::View;
use newtop_gcs::{GCS_OPERATION, NSO_OBJECT_KEY};
use newtop_invocation::api::{
    BindingStyle, CallId, InvCommand, InvMessage, OpenOptimisation, Replication, ReplyMode,
};
use newtop_invocation::client::{ClientCore, ClientError, ClientEvent};
use newtop_invocation::g2g::G2gCaller;
use newtop_invocation::server::ServerCore;
use newtop_invocation::INV_OPERATION;
use newtop_net::metrics::{MetricsSnapshot, Observability};
use newtop_net::sim::{Outbox, Packet};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_net::trace::{TraceEvent, TraceRecord};
use newtop_orb::cdr::{CdrDecode, CdrEncode};
use newtop_orb::giop::GiopMessage;
use newtop_orb::ior::ObjectRef;
use newtop_orb::orb::{InvokeError, OrbCore, OrbIncoming, RequestId};
use newtop_orb::servant::ServantError;

use crate::control::CtrlMessage;
use crate::directory::{
    DirCache, DirReply, DirRequest, GroupRecord, DIR_OBJECT_KEY, DIR_OPERATION,
};
use crate::tags;
use crate::INV_CTRL_OPERATION;

/// The implementation of a replicated object: operations with marshalled
/// arguments and results. Executed in the server group's total order, so
/// deterministic servants stay replica-consistent.
pub trait GroupServant: Send {
    /// Executes one operation.
    fn invoke(&mut self, op: &str, args: &[u8]) -> Bytes;
}

impl<F> GroupServant for F
where
    F: FnMut(&str, &[u8]) -> Bytes + Send,
{
    fn invoke(&mut self, op: &str, args: &[u8]) -> Bytes {
        self(op, args)
    }
}

/// The unified error type of the public NSO API: binding, invocation,
/// group-management and transport failures all surface as one enum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NewtopError {
    /// This node does not host the named server group.
    NotAServer(GroupId),
    /// No binding or monitor attachment exists under that group.
    Unbound(GroupId),
    /// The group id is already in use on this node.
    GroupInUse(GroupId),
    /// [`Nso::bind`] was called without a [`BindTarget`] — the options
    /// never said *who* to bind to.
    BindTargetMissing(GroupId),
    /// Admission control shed the operation: the group's send window,
    /// the pending-call table or a view-change buffer is full. The call
    /// was not sent; retry after in-flight work drains.
    Overloaded(GroupId),
    /// An incoming message body failed to unmarshal. The packet is
    /// dropped (never panicked on), counted under the
    /// `decode.malformed` metric and traced as
    /// [`TraceEvent::MalformedDropped`]; the payload names the ORB
    /// operation the body arrived under.
    Malformed(&'static str),
    /// An error from the group communication layer.
    Gcs(GcsError),
    /// An error from the client invocation core.
    Client(ClientError),
}

impl fmt::Display for NewtopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NewtopError::NotAServer(g) => write!(f, "node does not serve group {g}"),
            NewtopError::Unbound(g) => write!(f, "no binding for group {g}"),
            NewtopError::GroupInUse(g) => write!(f, "group id already in use: {g}"),
            NewtopError::BindTargetMissing(g) => {
                write!(
                    f,
                    "bind to {g} has no target (set BindOptions::open/closed/restricted)"
                )
            }
            NewtopError::Overloaded(g) => {
                write!(f, "overloaded: admission control shed the call to {g}")
            }
            NewtopError::Malformed(op) => write!(f, "malformed {op} message body dropped"),
            NewtopError::Gcs(e) => write!(f, "group communication error: {e}"),
            NewtopError::Client(e) => write!(f, "invocation error: {e}"),
        }
    }
}

impl Error for NewtopError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NewtopError::Gcs(e) => Some(e),
            NewtopError::Client(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GcsError> for NewtopError {
    fn from(e: GcsError) -> Self {
        match e {
            GcsError::Overloaded(g) => NewtopError::Overloaded(g),
            other => NewtopError::Gcs(other),
        }
    }
}

impl From<ClientError> for NewtopError {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Overloaded(g) => NewtopError::Overloaded(g),
            other => NewtopError::Client(other),
        }
    }
}

/// Things the NSO reports to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NsoOutput {
    /// A binding initiated with [`Nso::bind`] is ready for invocations.
    BindingReady {
        /// The client/server group of the binding.
        group: GroupId,
    },
    /// A binding could not be established (server unreachable or not
    /// serving).
    BindFailed {
        /// The client/server group that failed.
        group: GroupId,
    },
    /// An invocation completed with the replies its mode required.
    InvocationComplete {
        /// The completed call.
        call: CallId,
        /// `(server, result)` pairs.
        replies: Vec<(NodeId, Bytes)>,
    },
    /// An open binding's request manager vanished (§4.1): rebind and
    /// retry.
    BindingBroken {
        /// The broken client/server group.
        group: GroupId,
        /// The manager that disappeared.
        manager: NodeId,
        /// Calls still pending on the binding.
        pending_calls: Vec<u64>,
    },
    /// A peer-group multicast was delivered.
    PeerDeliver {
        /// The peer group.
        group: GroupId,
        /// The multicasting member.
        sender: NodeId,
        /// Application payload.
        payload: Bytes,
    },
    /// A group-to-group call completed.
    G2gComplete {
        /// The origin (client) group.
        origin: GroupId,
        /// The origin group's call number.
        number: u64,
        /// `(server, result)` pairs.
        replies: Vec<(NodeId, Bytes)>,
    },
    /// A view change in any group this node belongs to.
    ViewChanged {
        /// The group.
        group: GroupId,
        /// Its new view.
        view: View,
    },
    /// A plain (non-group) ORB invocation issued with
    /// [`Nso::plain_invoke`] completed.
    PlainReply {
        /// The request.
        request: RequestId,
        /// Its outcome.
        result: Result<Bytes, InvokeError>,
    },
    /// This node became the primary of a passively replicated server
    /// group and replayed its backlog.
    Promoted {
        /// The server group.
        group: GroupId,
        /// Requests replayed from the backlog.
        replayed: usize,
    },
}

/// Who a binding connects to — the *style* half of [`BindOptions`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum BindTarget {
    /// No target chosen yet; [`Nso::bind`] rejects this with
    /// [`NewtopError::BindTargetMissing`].
    #[default]
    Unspecified,
    /// Open binding (§3): a two-member client/server group with the named
    /// request manager, a member of the server group.
    Open {
        /// The server acting as request manager.
        manager: NodeId,
    },
    /// Closed binding (§3): a client/server group containing the client
    /// and every server.
    Closed {
        /// The full server-group membership.
        servers: Vec<NodeId>,
    },
    /// Open binding under the restricted-group optimisation (§4.2): the
    /// manager is the *designated* one — the lowest-ranked server, which
    /// the asymmetric protocol also makes the sequencer and passive
    /// replication the primary.
    Restricted {
        /// The full server-group membership (the designated manager is
        /// chosen from it).
        servers: Vec<NodeId>,
    },
    /// Name-based binding through the replicated directory: the service
    /// name is resolved to a [`GroupRecord`] (member set, configuration,
    /// view id) by asking the listed directory members in order, with a
    /// TTL'd client-side cache short-circuiting repeat resolutions. The
    /// record then shapes the binding per `style`. Resolution is
    /// asynchronous: [`Nso::bind`] returns the reserved handle at once
    /// and [`NsoOutput::BindingReady`] (or `BindFailed`, when every
    /// directory contact answers not-found or times out) follows.
    Resolve {
        /// The service name registered in the directory.
        name: String,
        /// Directory group members to consult, in preference order.
        directory: Vec<NodeId>,
        /// The binding shape to build from the resolved record.
        style: ResolveStyle,
    },
}

/// How a name-resolved binding is shaped once its [`GroupRecord`]
/// arrives (the resolved analogues of the explicit [`BindTarget`]s).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResolveStyle {
    /// Closed binding to the record's full member set.
    #[default]
    Closed,
    /// Open binding through the member at `rank` (modulo the member
    /// count), letting co-located clients spread across managers.
    Open {
        /// Preference rank into the resolved member list.
        rank: usize,
    },
    /// Open binding through the designated (lowest-ranked) member.
    Restricted,
}

/// Options for creating a binding with [`Nso::bind`]: the target (open /
/// closed / restricted style), ordering and liveness parameters of the
/// client/server group, and invocation defaults. Build with one of the
/// constructors, then chain `with_*` methods:
///
/// ```ignore
/// let opts = BindOptions::restricted(servers)
///     .with_reply_mode(ReplyMode::First)
///     .with_async_forwarding(true);
/// let binding = nso.bind(server_group, opts, now, &mut out)?;
/// ```
#[derive(Clone, Debug)]
pub struct BindOptions {
    /// Who to bind to (open / closed / restricted).
    pub target: BindTarget,
    /// Total-order protocol of the client/server group.
    pub ordering: OrderProtocol,
    /// Time-silence period of the client/server group.
    pub time_silence: Duration,
    /// Fan-out mode of the client/server group. [`FanoutMode::Synchronous`]
    /// chains per-member round trips (§2.2); [`FanoutMode::Asynchronous`]
    /// issues sends back-to-back, which also lets a batching-enabled node
    /// pack them into one frame per destination.
    pub fanout: FanoutMode,
    /// How long to wait for the servers' acknowledgements.
    pub timeout: Duration,
    /// Explicit group id; autogenerated when `None`.
    pub group_id: Option<GroupId>,
    /// Default reply mode for calls issued over this binding with
    /// [`Nso::invoke_default`].
    pub default_mode: ReplyMode,
    /// The client expects the §4.2 asynchronous-forwarding optimisation:
    /// wait-for-first calls are answered by the manager before the group
    /// round completes. Takes effect only when the server group was
    /// created with [`OpenOptimisation::AsyncForwarding`]; setting it
    /// here documents the intent and pairs naturally with
    /// [`ReplyMode::First`] as the default mode.
    pub async_forwarding: bool,
}

impl Default for BindOptions {
    /// No target, asymmetric ordering and a 100 ms time-silence period.
    /// Client/server groups are numerous (one per client), so their
    /// heartbeats are deliberately coarser than a server group's: a
    /// server in n bindings pays n per-member null fan-outs per period.
    fn default() -> Self {
        BindOptions {
            target: BindTarget::Unspecified,
            ordering: OrderProtocol::Asymmetric,
            time_silence: Duration::from_millis(100),
            fanout: FanoutMode::Synchronous,
            timeout: Duration::from_secs(2),
            group_id: None,
            default_mode: ReplyMode::All,
            async_forwarding: false,
        }
    }
}

impl BindOptions {
    /// Options for an open binding through `manager`.
    #[must_use]
    pub fn open(manager: NodeId) -> Self {
        BindOptions {
            target: BindTarget::Open { manager },
            ..BindOptions::default()
        }
    }

    /// Options for a closed binding to the full server group.
    #[must_use]
    pub fn closed(servers: Vec<NodeId>) -> Self {
        BindOptions {
            target: BindTarget::Closed { servers },
            ..BindOptions::default()
        }
    }

    /// Options for an open binding to the designated manager
    /// (restricted-group optimisation, §4.2).
    #[must_use]
    pub fn restricted(servers: Vec<NodeId>) -> Self {
        BindOptions {
            target: BindTarget::Restricted { servers },
            ..BindOptions::default()
        }
    }

    /// Options for a name-resolved binding through the directory (closed
    /// shape by default; see [`BindOptions::with_resolve_style`]).
    #[must_use]
    pub fn resolve(name: impl Into<String>, directory: Vec<NodeId>) -> Self {
        BindOptions {
            target: BindTarget::Resolve {
                name: name.into(),
                directory,
                style: ResolveStyle::Closed,
            },
            ..BindOptions::default()
        }
    }

    /// Sets the shape a name-resolved binding takes once the record
    /// arrives. No effect on non-resolve targets.
    #[must_use]
    pub fn with_resolve_style(mut self, new_style: ResolveStyle) -> Self {
        if let BindTarget::Resolve { style, .. } = &mut self.target {
            *style = new_style;
        }
        self
    }

    /// Sets the total-order protocol of the client/server group.
    #[must_use]
    pub fn with_ordering(mut self, ordering: OrderProtocol) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the time-silence period of the client/server group.
    #[must_use]
    pub fn with_time_silence(mut self, period: Duration) -> Self {
        self.time_silence = period;
        self
    }

    /// Sets the fan-out mode of the client/server group. Asynchronous
    /// fan-outs are a prerequisite for send-path batching: only
    /// back-to-back sends can share a frame.
    #[must_use]
    pub fn with_fanout(mut self, fanout: FanoutMode) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets how long to wait for the servers' acknowledgements.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Pins the client/server group's id instead of autogenerating one.
    #[must_use]
    pub fn with_group_id(mut self, group: GroupId) -> Self {
        self.group_id = Some(group);
        self
    }

    /// Sets the default reply mode used by [`Nso::invoke_default`].
    #[must_use]
    pub fn with_reply_mode(mut self, mode: ReplyMode) -> Self {
        self.default_mode = mode;
        self
    }

    /// Declares the binding expects asynchronous forwarding (§4.2).
    #[must_use]
    pub fn with_async_forwarding(mut self, on: bool) -> Self {
        self.async_forwarding = on;
        self
    }
}

/// What kind of group a [`GroupHandle`] refers to — which operations it
/// supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HandleKind {
    /// A client binding from [`Nso::bind`]: invoke / retry / unbind.
    Binding,
    /// A peer group: send / leave.
    Peer,
}

/// A handle to a group this NSO participates in, returned by
/// [`Nso::bind`], [`Nso::create_peer_group`] and
/// [`Nso::join_peer_group`]. The handle carries the group id plus the
/// binding's invocation defaults, so call-side operations hang off it
/// instead of re-threading raw [`GroupId`]s through every call:
///
/// ```ignore
/// let binding = nso.bind(server_group, opts, now, &mut out)?;
/// // ... after NsoOutput::BindingReady ...
/// binding.invoke(&mut nso, "op", args, ReplyMode::All, now, &mut out)?;
/// binding.unbind(&mut nso, now, &mut out)?;
/// ```
///
/// Handles are plain values (clonable, no liveness of their own): the
/// group they name can still fail or be torn down underneath them, in
/// which case operations return the same errors the group-id methods
/// did. A handle for an already-established group can be recovered with
/// [`Nso::handle_for`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupHandle {
    group: GroupId,
    kind: HandleKind,
    default_mode: ReplyMode,
}

impl GroupHandle {
    /// The group this handle refers to.
    #[must_use]
    pub fn id(&self) -> &GroupId {
        &self.group
    }

    /// Rejects an operation the handle's group kind does not support
    /// (e.g. [`GroupHandle::send`] on a client binding).
    fn expect_kind(&self, kind: HandleKind) -> Result<(), NewtopError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(NewtopError::Unbound(self.group.clone()))
        }
    }

    /// The default reply mode of invocations issued with
    /// [`GroupHandle::invoke_default`] (fixed at bind time).
    #[must_use]
    pub fn default_mode(&self) -> ReplyMode {
        self.default_mode
    }

    /// Invokes an operation over this binding with the given reply mode.
    /// Completion surfaces as [`NsoOutput::InvocationComplete`].
    ///
    /// # Errors
    ///
    /// [`NewtopError::Client`] if the binding is unknown (not ready yet,
    /// torn down, or a peer-group handle).
    pub fn invoke(
        &self,
        nso: &mut Nso,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<CallId, NewtopError> {
        self.expect_kind(HandleKind::Binding)?;
        nso.do_invoke(&self.group, op, args, mode, now, out)
    }

    /// Invokes with the handle's default reply mode (set at bind time via
    /// [`BindOptions::with_reply_mode`]).
    ///
    /// # Errors
    ///
    /// [`NewtopError::Client`] if the binding is unknown.
    pub fn invoke_default(
        &self,
        nso: &mut Nso,
        op: &str,
        args: Bytes,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<CallId, NewtopError> {
        self.expect_kind(HandleKind::Binding)?;
        nso.do_invoke(&self.group, op, args, self.default_mode, now, out)
    }

    /// Re-issues a pending call over this (new) binding with its original
    /// call number (§4.1 rebind-and-retry).
    ///
    /// # Errors
    ///
    /// [`NewtopError::Client`] if the call or binding is unknown.
    pub fn retry(
        &self,
        nso: &mut Nso,
        call_number: u64,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        self.expect_kind(HandleKind::Binding)?;
        nso.do_retry(call_number, &self.group, now, out)
    }

    /// Tears down this client binding: leaves the client/server group and
    /// forgets it.
    ///
    /// # Errors
    ///
    /// [`NewtopError::Unbound`] if no such binding exists.
    pub fn unbind(&self, nso: &mut Nso, now: SimTime, out: &mut Outbox) -> Result<(), NewtopError> {
        self.expect_kind(HandleKind::Binding)?;
        nso.do_unbind(&self.group, now, out)
    }

    /// One-way multicast in this peer group (the peer-participation
    /// mode).
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] if the node is not a member.
    pub fn send(
        &self,
        nso: &mut Nso,
        payload: Bytes,
        order: DeliveryOrder,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        self.expect_kind(HandleKind::Peer)?;
        nso.do_peer_send(&self.group, payload, order, now, out)
    }

    /// Gracefully leaves this peer group.
    ///
    /// # Errors
    ///
    /// [`NewtopError::Unbound`] if this node is not a member.
    pub fn leave(&self, nso: &mut Nso, now: SimTime, out: &mut Outbox) -> Result<(), NewtopError> {
        self.expect_kind(HandleKind::Peer)?;
        nso.leave_peer_group(&self.group, now, out)
    }
}

#[derive(Clone, Debug)]
enum GroupRole {
    /// I am the client of this client/server group.
    ClientBinding,
    /// I am a replica of this server group.
    ServerGroup,
    /// I am the server of this client/server group; requests route to the
    /// named server group's core.
    Served { server_group: GroupId },
    /// I am the request manager of this client monitor group.
    MonitorManager { server_group: GroupId },
    /// I am an origin-group member in this monitor group.
    MonitorCaller,
    /// A plain peer group: deliveries go straight to the application.
    Peer,
}

#[derive(Debug)]
struct PendingBind {
    style: BindingStyle,
    members: Vec<NodeId>,
    server_count: usize,
    outstanding: usize,
    config: GroupConfig,
}

#[derive(Debug)]
enum NsoTimer {
    BindTimeout(GroupId),
    /// A directory resolution has waited long enough on its current
    /// contact; advance to the next or fail the waiting binds. The
    /// attempt stamp keeps a timer armed for an earlier contact from
    /// cutting short its successor's wait.
    ResolveTimeout {
        name: String,
        attempt: usize,
    },
}

/// A bind waiting for its directory resolution.
#[derive(Debug)]
struct PendingResolve {
    /// The reserved binding group id (already handed to the caller).
    group: GroupId,
    /// The shape to build once the record arrives.
    style: ResolveStyle,
    /// The original bind options (group id pinned to `group`).
    opts: BindOptions,
}

/// Progress of one name's resolution against the directory contacts.
#[derive(Debug)]
struct ResolveProgress {
    /// Directory members still to try (next first).
    contacts: Vec<NodeId>,
    /// Index of the next contact to ask.
    next: usize,
    /// Binds waiting on this name.
    waiters: Vec<PendingResolve>,
}

/// Reserved tag of the send-path batch-flush micro-timer (the first tag
/// of the NSO's range; [`Nso::alloc_tag`] starts above it).
const BATCH_FLUSH_TAG: u64 = tags::NSO_BASE;

/// How long staged sends may wait for company. Messages staged within
/// one window share a frame per destination, so this bounds both the
/// added latency and the coalescing opportunity. Matches the order-record
/// aggregation cadence of the GCS sequencer.
const BATCH_FLUSH_DELAY: Duration = Duration::from_micros(300);

/// Construction options for an [`Nso`]: how many parallel shard engines
/// partition the node's groups (see [`newtop_gcs::shard::ShardedGcs`])
/// and whether the send path batches small protocol messages into one
/// GIOP frame per destination per event. Both default off (one shard, no
/// batching), which is bit-identical to the pre-sharding stack.
#[derive(Clone, Debug)]
pub struct NsoOptions {
    shards: usize,
    batching: bool,
}

impl Default for NsoOptions {
    fn default() -> Self {
        NsoOptions {
            shards: 1,
            batching: false,
        }
    }
}

impl NsoOptions {
    /// One shard, batching off.
    #[must_use]
    pub fn new() -> Self {
        NsoOptions::default()
    }

    /// Sets the number of parallel shard engines (clamped to
    /// `1..=`[`newtop_gcs::shard::MAX_SHARDS`] at construction).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables per-destination batching of small protocol messages.
    #[must_use]
    pub fn with_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether send-path batching is enabled.
    #[must_use]
    pub fn batching(&self) -> bool {
        self.batching
    }
}

/// The NewTop service object. See the [module docs](self).
pub struct Nso {
    node: NodeId,
    orb: OrbCore,
    gcs: ShardedGcs,
    batching: bool,
    client: ClientCore,
    servers: BTreeMap<GroupId, ServerCore>,
    servants: BTreeMap<GroupId, Box<dyn GroupServant>>,
    g2g_callers: BTreeMap<GroupId, G2gCaller>,
    roles: BTreeMap<GroupId, GroupRole>,
    pending_bind_requests: BTreeMap<RequestId, GroupId>,
    /// Outstanding directory resolutions: ORB request → service name.
    pending_dir_requests: BTreeMap<RequestId, String>,
    /// Per-name resolution progress and the binds waiting on it.
    pending_resolves: BTreeMap<String, ResolveProgress>,
    /// TTL'd cache of resolved directory records, invalidated when a
    /// view change reports a cached member departed.
    dir_cache: DirCache,
    /// Which service name a resolve-originated binding came from, so a
    /// failed or broken binding invalidates its cache entry.
    resolved_origin: BTreeMap<GroupId, String>,
    binds: BTreeMap<GroupId, PendingBind>,
    was_primary: BTreeMap<GroupId, bool>,
    nso_timers: BTreeMap<u64, NsoTimer>,
    next_tag: u64,
    next_binding: u64,
    outputs: Vec<NsoOutput>,
    /// Invocation-layer metrics and trace (the GCS member keeps its own;
    /// [`Nso::metrics`] / [`Nso::trace`] merge the two).
    obs: Observability,
    /// Staged batchable sends, persisted across handler events so the
    /// flush window spans them (see [`SendBuffer`]). Flushed by the
    /// [`BATCH_FLUSH_TAG`] micro-timer.
    send_buf: SendBuffer,
    /// Per-binding default reply mode (from [`BindOptions`]).
    default_modes: BTreeMap<GroupId, ReplyMode>,
    /// Issue time of outstanding calls, for the end-to-end invocation
    /// latency histogram.
    call_issued: BTreeMap<u64, SimTime>,
}

impl fmt::Debug for Nso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Nso")
            .field("node", &self.node)
            .field("groups", &self.roles.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Runs `f` with a fresh [`GcsNet`] staging into the node's persistent
/// [`SendBuffer`], then folds the context's counters into the metric
/// registry. Staged sends are NOT flushed here: they wait (at most
/// [`BATCH_FLUSH_DELAY`]) for the batch-flush micro-timer, so messages
/// from several handler events can share a frame per destination. The
/// epilogue arms that timer whenever the buffer is non-empty and no
/// timer is already in flight. Takes field-precise borrows (rather than
/// `&mut Nso`) so the closure can still use `self.gcs`.
fn with_net<R>(
    orb: &mut OrbCore,
    obs: &mut Observability,
    out: &mut Outbox,
    batching: bool,
    buf: &mut SendBuffer,
    f: impl FnOnce(&mut GcsNet<'_>) -> R,
) -> R {
    let mut net = GcsNet::with_buffer(orb, out, batching, buf);
    let r = f(&mut net);
    let sent = net.sent();
    if sent > 0 {
        obs.metrics.add("gcs.msgs_sent", sent);
    }
    let encodes = net.encode_calls();
    if encodes > 0 {
        obs.metrics.add("gcs.encode_calls", encodes);
        obs.metrics.add("gcs.bytes_encoded", net.bytes_encoded());
    }
    let frames = net.batch_frames();
    if frames > 0 {
        obs.metrics.add("gcs.batch_frames", frames);
        obs.metrics.add("gcs.batch_msgs", net.batch_msgs());
    }
    drop(net);
    if buf.has_staged() && !buf.scheduled {
        buf.scheduled = true;
        out.set_timer(BATCH_FLUSH_DELAY, BATCH_FLUSH_TAG);
    }
    r
}

impl Nso {
    /// Creates the service object for `node` with the default options:
    /// one shard engine and no batching (the deterministic baseline).
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        Nso::with_options(node, NsoOptions::default())
    }

    /// Creates the service object for `node` with explicit
    /// [`NsoOptions`] (shard-engine count, send-path batching).
    #[must_use]
    pub fn with_options(node: NodeId, opts: NsoOptions) -> Self {
        Nso {
            node,
            orb: OrbCore::new(node),
            gcs: ShardedGcs::new(node, tags::GCS_BASE, opts.shards),
            batching: opts.batching,
            client: ClientCore::new(node),
            servers: BTreeMap::new(),
            servants: BTreeMap::new(),
            g2g_callers: BTreeMap::new(),
            roles: BTreeMap::new(),
            pending_bind_requests: BTreeMap::new(),
            pending_dir_requests: BTreeMap::new(),
            pending_resolves: BTreeMap::new(),
            dir_cache: DirCache::default(),
            resolved_origin: BTreeMap::new(),
            binds: BTreeMap::new(),
            was_primary: BTreeMap::new(),
            nso_timers: BTreeMap::new(),
            // Tag 0 (NSO_BASE itself) is reserved for the batch-flush
            // micro-timer; allocated tags start at 1.
            next_tag: 1,
            next_binding: 1,
            send_buf: SendBuffer::new(),
            outputs: Vec::new(),
            obs: Observability::new(),
            default_modes: BTreeMap::new(),
            call_issued: BTreeMap::new(),
        }
    }

    /// The hosting node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current view of a group this node belongs to.
    #[must_use]
    pub fn view_of(&self, group: &GroupId) -> Option<&View> {
        self.gcs.view_of(group)
    }

    /// The client-side directory record cache (read-only; tests and
    /// diagnostics inspect TTL/staleness behaviour through this).
    #[must_use]
    pub fn dir_cache(&self) -> &DirCache {
        &self.dir_cache
    }

    /// Group-communication diagnostics for one group, with the node's
    /// protocol-event counters appended.
    #[doc(hidden)]
    #[must_use]
    pub fn gcs_diagnostics(&self, group: &GroupId) -> String {
        let snap = self.metrics();
        let events: Vec<String> = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("ev."))
            .map(|(k, v)| format!("{}={v}", &k[3..]))
            .collect();
        format!(
            "{} events[{}]",
            self.gcs.diagnostics(group),
            events.join(" ")
        )
    }

    /// A merged snapshot of this node's metrics: protocol-event counters
    /// (`ev.*`), group-communication counters (`gcs.*`) and invocation
    /// counters/latencies (`inv.*`), from both the invocation layer and
    /// the GCS member.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.obs.metrics.clone();
        for shard_obs in self.gcs.observabilities() {
            merged.merge(&shard_obs.metrics);
        }
        merged.snapshot()
    }

    /// The node's protocol-event trace: the invocation-layer and GCS
    /// records merged in timestamp order. Bounded — under sustained load
    /// the oldest records are gone (the `ev.*` counters stay exact).
    #[must_use]
    pub fn trace(&self) -> Vec<TraceRecord> {
        let mut records = self.obs.trace.to_vec();
        for shard_obs in self.gcs.observabilities() {
            records.extend(shard_obs.trace.iter().cloned());
        }
        records.sort_by_key(|r| r.at);
        records
    }

    /// Server-core access for diagnostics.
    #[doc(hidden)]
    #[must_use]
    pub fn server_core(&self, group: &GroupId) -> Option<&ServerCore> {
        self.servers.get(group)
    }

    /// Drains the outputs produced since the last call. Runtimes loop on
    /// this after every event so application reactions (which may enqueue
    /// further outputs) are all surfaced.
    pub fn take_outputs(&mut self) -> Vec<NsoOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// Whether a timer tag belongs to this NSO (as opposed to the
    /// application layer).
    #[must_use]
    pub fn owns_tag(&self, tag: u64) -> bool {
        tag == BATCH_FLUSH_TAG || self.gcs.owns_tag(tag) || self.nso_timers.contains_key(&tag)
    }

    // --- server-side setup ------------------------------------------------

    /// Statically creates a server group on this replica (every listed
    /// member must call this with the same arguments), with the given
    /// replication discipline and open-group optimisation policy.
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from group creation.
    #[allow(clippy::too_many_arguments)]
    pub fn create_server_group(
        &mut self,
        group: GroupId,
        members: Vec<NodeId>,
        replication: Replication,
        optimisation: OpenOptimisation,
        config: GroupConfig,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        let outs = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| {
                self.gcs
                    .create_group(group.clone(), config, members.clone(), now, net)
            },
        )?;
        let mut core = ServerCore::new(self.node, group.clone(), replication, optimisation);
        core.set_server_view(members);
        self.was_primary.insert(group.clone(), core.is_primary());
        self.servers.insert(group.clone(), core);
        self.roles.insert(group.clone(), GroupRole::ServerGroup);
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// Registers the application servant executed for a server group's
    /// requests.
    pub fn register_group_servant(&mut self, group: GroupId, servant: Box<dyn GroupServant>) {
        self.servants.insert(group, servant);
    }

    /// The designated request manager of a server group this node hosts
    /// (for the restricted-group optimisation).
    #[must_use]
    pub fn designated_manager(&self, server_group: &GroupId) -> Option<NodeId> {
        self.servers.get(server_group)?.designated_manager()
    }

    // --- client-side bindings ----------------------------------------------

    /// Establishes a client binding to `server_group` — the single entry
    /// point for all binding styles. [`BindOptions::target`] selects the
    /// shape:
    ///
    /// * [`BindTarget::Open`] — a two-member open binding through the
    ///   given request manager (§3.2).
    /// * [`BindTarget::Closed`] — a closed binding spanning the client
    ///   plus the full listed server group (§3.2).
    /// * [`BindTarget::Restricted`] — an open binding through the
    ///   group's designated manager, chosen as the lowest-ranked listed
    ///   server (the restricted-group optimisation, §4.2; servers must
    ///   have been created with [`OpenOptimisation::Restricted`] for
    ///   forwarding to be skipped).
    ///
    /// Returns a [`GroupHandle`] that invocations hang off; readiness
    /// surfaces as [`NsoOutput::BindingReady`]. The handle's default
    /// reply mode (for [`GroupHandle::invoke_default`]) and the
    /// async-forwarding preference are taken from `opts`.
    ///
    /// # Errors
    ///
    /// [`NewtopError::BindTargetMissing`] if `opts.target` was never
    /// set; [`NewtopError::GroupInUse`] if the chosen group id already
    /// exists.
    pub fn bind(
        &mut self,
        server_group: GroupId,
        opts: BindOptions,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupHandle, NewtopError> {
        let default_mode = opts.default_mode;
        let group = match opts.target.clone() {
            BindTarget::Unspecified => Err(NewtopError::BindTargetMissing(server_group)),
            BindTarget::Open { manager } => {
                let members = vec![self.node, manager];
                self.start_bind(
                    server_group,
                    members,
                    BindingStyle::Open { manager },
                    0,
                    opts,
                    now,
                    out,
                )
            }
            BindTarget::Closed { servers } => {
                let mut members = vec![self.node];
                members.extend(servers.iter().copied());
                let count = servers.len();
                self.start_bind(
                    server_group,
                    members,
                    BindingStyle::Closed,
                    count,
                    opts,
                    now,
                    out,
                )
            }
            BindTarget::Restricted { servers } => {
                let manager = servers
                    .iter()
                    .copied()
                    .min()
                    .ok_or_else(|| NewtopError::BindTargetMissing(server_group.clone()))?;
                let members = vec![self.node, manager];
                self.start_bind(
                    server_group,
                    members,
                    BindingStyle::Open { manager },
                    0,
                    opts,
                    now,
                    out,
                )
            }
            BindTarget::Resolve {
                name,
                directory,
                style,
            } => self.start_resolve(name, directory, style, opts, now, out),
        }?;
        Ok(GroupHandle {
            group,
            kind: HandleKind::Binding,
            default_mode,
        })
    }

    /// Recovers a [`GroupHandle`] for a group that is already established
    /// on this node (a ready client binding or a peer group). `None` for
    /// unknown groups and for roles that have no handle-based surface
    /// (server groups, monitor groups).
    #[must_use]
    pub fn handle_for(&self, group: &GroupId) -> Option<GroupHandle> {
        let kind = match self.roles.get(group)? {
            GroupRole::ClientBinding => HandleKind::Binding,
            GroupRole::Peer => HandleKind::Peer,
            _ => return None,
        };
        Some(GroupHandle {
            group: group.clone(),
            kind,
            default_mode: self
                .default_modes
                .get(group)
                .copied()
                .unwrap_or(ReplyMode::All),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn start_bind(
        &mut self,
        server_group: GroupId,
        members: Vec<NodeId>,
        style: BindingStyle,
        server_count: usize,
        opts: BindOptions,
        _now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupId, NewtopError> {
        let group = opts.group_id.unwrap_or_else(|| {
            let id = GroupId::new(format!("cs:{}:{}", self.node, self.next_binding));
            self.next_binding += 1;
            id
        });
        if self.roles.contains_key(&group) || self.binds.contains_key(&group) {
            return Err(NewtopError::GroupInUse(group));
        }
        self.default_modes.insert(group.clone(), opts.default_mode);
        let config = GroupConfig {
            ordering: opts.ordering,
            liveness: Liveness::EventDriven,
            time_silence: opts.time_silence,
            fanout: opts.fanout,
            ..GroupConfig::default()
        };
        let ctrl = CtrlMessage::BindRequest {
            group: group.clone(),
            client: self.node,
            server_group: server_group.clone(),
            members: members.clone(),
            closed: style == BindingStyle::Closed,
            ordering: opts.ordering,
            time_silence_micros: opts.time_silence.as_micros() as u64,
            fanout: opts.fanout,
        };
        let body = ctrl.to_cdr();
        let servers: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&m| m != self.node)
            .collect();
        for &s in &servers {
            let req = self.orb.invoke(
                &ObjectRef::new(s, NSO_OBJECT_KEY),
                INV_CTRL_OPERATION,
                body.clone(),
                out,
            );
            self.pending_bind_requests.insert(req, group.clone());
        }
        self.binds.insert(
            group.clone(),
            PendingBind {
                style,
                members,
                server_count,
                outstanding: servers.len(),
                config,
            },
        );
        let tag = self.alloc_tag(NsoTimer::BindTimeout(group.clone()));
        out.set_timer(opts.timeout, tag);
        Ok(group)
    }

    /// Begins a name-resolved bind: answers from the TTL'd cache when it
    /// can, otherwise reserves the binding group id, queues the bind on
    /// the name's resolution and asks the next directory contact.
    fn start_resolve(
        &mut self,
        name: String,
        directory: Vec<NodeId>,
        style: ResolveStyle,
        mut opts: BindOptions,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupId, NewtopError> {
        if directory.is_empty() {
            return Err(NewtopError::BindTargetMissing(GroupId::new(name)));
        }
        if let Some(record) = self.dir_cache.lookup(&name, now).cloned() {
            let group = self.bind_resolved(&record, style, opts, now, out)?;
            self.resolved_origin.insert(group.clone(), name);
            return Ok(group);
        }
        let group = opts.group_id.clone().unwrap_or_else(|| {
            let id = GroupId::new(format!("cs:{}:{}", self.node, self.next_binding));
            self.next_binding += 1;
            id
        });
        if self.roles.contains_key(&group) || self.binds.contains_key(&group) {
            return Err(NewtopError::GroupInUse(group));
        }
        opts.group_id = Some(group.clone());
        self.resolved_origin.insert(group.clone(), name.clone());
        let waiter = PendingResolve {
            group: group.clone(),
            style,
            opts: opts.clone(),
        };
        match self.pending_resolves.get_mut(&name) {
            Some(progress) => progress.waiters.push(waiter),
            None => {
                self.pending_resolves.insert(
                    name.clone(),
                    ResolveProgress {
                        contacts: directory,
                        next: 0,
                        waiters: vec![waiter],
                    },
                );
                self.issue_resolve(&name, opts.timeout, out);
            }
        }
        Ok(group)
    }

    /// Asks the next directory contact for `name`'s record and arms the
    /// per-contact timeout.
    fn issue_resolve(&mut self, name: &str, timeout: Duration, out: &mut Outbox) {
        let Some(progress) = self.pending_resolves.get_mut(name) else {
            return;
        };
        let slot = progress
            .next
            .checked_rem(progress.contacts.len())
            .unwrap_or(0);
        let Some(&contact) = progress.contacts.get(slot) else {
            return; // record had no contacts; nothing to ask
        };
        progress.next += 1;
        let body = DirRequest::Resolve {
            name: name.to_owned(),
        }
        .to_cdr();
        let req = self.orb.invoke(
            &ObjectRef::new(contact, DIR_OBJECT_KEY),
            DIR_OPERATION,
            body,
            out,
        );
        self.pending_dir_requests.insert(req, name.to_owned());
        let attempt = self
            .pending_resolves
            .get(name)
            .map_or(0, |progress| progress.next);
        let tag = self.alloc_tag(NsoTimer::ResolveTimeout {
            name: name.to_owned(),
            attempt,
        });
        out.set_timer(timeout, tag);
    }

    /// Shapes and starts the actual bind from a resolved record.
    fn bind_resolved(
        &mut self,
        record: &GroupRecord,
        style: ResolveStyle,
        mut opts: BindOptions,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupId, NewtopError> {
        let server_group = record.group_id();
        if record.members.is_empty() {
            return Err(NewtopError::BindTargetMissing(server_group));
        }
        // The server group already exists with the record's parameters;
        // the client/server group mirrors them rather than whatever the
        // caller guessed.
        opts.ordering = record.config.ordering;
        opts.time_silence = record.config.time_silence;
        opts.fanout = record.config.fanout;
        let (members, bind_style, server_count) = match style {
            ResolveStyle::Closed => {
                let mut members = vec![self.node];
                members.extend(record.members.iter().copied());
                (members, BindingStyle::Closed, record.members.len())
            }
            ResolveStyle::Open { rank } => {
                let slot = rank.checked_rem(record.members.len()).unwrap_or(0);
                let manager = record
                    .members
                    .get(slot)
                    .copied()
                    .ok_or_else(|| NewtopError::BindTargetMissing(server_group.clone()))?;
                (vec![self.node, manager], BindingStyle::Open { manager }, 0)
            }
            ResolveStyle::Restricted => {
                let manager = record
                    .members
                    .iter()
                    .copied()
                    .min()
                    .ok_or_else(|| NewtopError::BindTargetMissing(server_group.clone()))?;
                (vec![self.node, manager], BindingStyle::Open { manager }, 0)
            }
        };
        self.start_bind(
            server_group,
            members,
            bind_style,
            server_count,
            opts,
            now,
            out,
        )
    }

    /// A directory contact answered (or errored) a resolution.
    fn on_dir_reply(
        &mut self,
        name: String,
        result: Result<Bytes, InvokeError>,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let reply = result.ok().and_then(|body| DirReply::from_cdr(&body).ok());
        match reply {
            Some(DirReply::Found { record }) => {
                self.dir_cache.insert(record.clone(), now);
                let Some(progress) = self.pending_resolves.remove(&name) else {
                    return;
                };
                for waiter in progress.waiters {
                    if self
                        .bind_resolved(&record, waiter.style, waiter.opts, now, out)
                        .is_err()
                    {
                        self.fail_bind(waiter.group, now);
                    }
                }
            }
            // Not found, a malformed body or a transport error all mean
            // the same thing here: this contact cannot help; rotate.
            Some(DirReply::NotFound { .. } | DirReply::Ok) | None => {
                self.advance_resolve(&name, now, out);
            }
        }
    }

    /// Moves a resolution to its next contact, failing every waiting
    /// bind once all contacts have been tried.
    fn advance_resolve(&mut self, name: &str, now: SimTime, out: &mut Outbox) {
        let Some(progress) = self.pending_resolves.get(name) else {
            return;
        };
        if progress.next < progress.contacts.len() {
            let timeout = progress
                .waiters
                .first()
                .map_or(Duration::from_secs(2), |w| w.opts.timeout);
            self.issue_resolve(name, timeout, out);
            return;
        }
        let Some(progress) = self.pending_resolves.remove(name) else {
            return;
        };
        for waiter in progress.waiters {
            self.fail_bind(waiter.group, now);
        }
    }

    /// Emits `BindFailed` for a reserved binding that never started.
    fn fail_bind(&mut self, group: GroupId, now: SimTime) {
        if let Some(name) = self.resolved_origin.remove(&group) {
            self.dir_cache.invalidate(&name);
        }
        self.obs.record(
            now,
            TraceEvent::BindFailed {
                group: group.as_str().to_string(),
            },
        );
        self.outputs.push(NsoOutput::BindFailed { group });
    }

    fn do_unbind(
        &mut self,
        group: &GroupId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        if !matches!(self.roles.get(group), Some(GroupRole::ClientBinding)) {
            return Err(NewtopError::Unbound(group.clone()));
        }
        self.roles.remove(group);
        self.client.remove_binding(group);
        self.default_modes.remove(group);
        let outs = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| self.gcs.leave_group(group, now, net).unwrap_or_default(),
        );
        self.route_gcs(outs, now, out);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn do_invoke(
        &mut self,
        binding: &GroupId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<CallId, NewtopError> {
        let (call, cmds, events) = self.client.invoke(binding, op, args, mode)?;
        self.obs.metrics.incr("inv.calls_issued");
        self.call_issued.insert(call.number, now);
        self.run_commands(cmds, now, out);
        self.map_client_events(events, now, out);
        Ok(call)
    }

    fn do_retry(
        &mut self,
        call_number: u64,
        binding: &GroupId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        let cmds = self.client.retry(call_number, binding)?;
        self.run_commands(cmds, now, out);
        Ok(())
    }

    // --- peer groups ---------------------------------------------------------

    /// Statically creates a peer group (every member calls this with the
    /// same arguments) and returns its [`GroupHandle`]. Deliveries
    /// surface as [`NsoOutput::PeerDeliver`].
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from group creation.
    pub fn create_peer_group(
        &mut self,
        group: GroupId,
        members: Vec<NodeId>,
        config: GroupConfig,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupHandle, NewtopError> {
        let outs = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| {
                self.gcs
                    .create_group(group.clone(), config, members, now, net)
            },
        )?;
        self.roles.insert(group.clone(), GroupRole::Peer);
        self.route_gcs(outs, now, out);
        Ok(GroupHandle {
            group,
            kind: HandleKind::Peer,
            default_mode: ReplyMode::All,
        })
    }

    /// Dynamically joins an existing peer group through `contact`, a
    /// current member (the GCS join protocol: the contact triggers a view
    /// change that admits this node). Completion surfaces as a
    /// [`NsoOutput::ViewChanged`] whose view contains this node.
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] (e.g. already a member).
    pub fn join_peer_group(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        contact: NodeId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupHandle, NewtopError> {
        with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| {
                self.gcs
                    .join_group(group.clone(), config, contact, now, net)
            },
        )?;
        self.roles.insert(group.clone(), GroupRole::Peer);
        Ok(GroupHandle {
            group,
            kind: HandleKind::Peer,
            default_mode: ReplyMode::All,
        })
    }

    /// Gracefully leaves a peer group; the remaining members install a
    /// view without this node.
    ///
    /// # Errors
    ///
    /// [`NewtopError::Unbound`] if this node is not a member.
    pub fn leave_peer_group(
        &mut self,
        group: &GroupId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        if !matches!(self.roles.get(group), Some(GroupRole::Peer)) {
            return Err(NewtopError::Unbound(group.clone()));
        }
        let outs = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| self.gcs.leave_group(group, now, net),
        )?;
        self.route_gcs(outs, now, out);
        Ok(())
    }

    fn do_peer_send(
        &mut self,
        group: &GroupId,
        payload: Bytes,
        order: DeliveryOrder,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| self.gcs.multicast(group, order, payload, now, net),
        )?;
        Ok(())
    }

    // --- group-to-group -------------------------------------------------------

    /// Statically sets up a client monitor group (Fig. 6) for
    /// group-to-group invocation: `members` must be the origin group's
    /// members plus the request `manager` (a member of `server_group`),
    /// and every one of them calls this with the same arguments.
    ///
    /// # Errors
    ///
    /// [`NewtopError::NotAServer`] at the manager if it does not host
    /// `server_group`; any [`GcsError`] from group creation.
    #[allow(clippy::too_many_arguments)]
    pub fn setup_monitor_group(
        &mut self,
        monitor: GroupId,
        origin: GroupId,
        manager: NodeId,
        server_group: GroupId,
        members: Vec<NodeId>,
        config: GroupConfig,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NewtopError> {
        if self.node == manager && !self.servers.contains_key(&server_group) {
            return Err(NewtopError::NotAServer(server_group));
        }
        let outs = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| {
                self.gcs
                    .create_group(monitor.clone(), config, members, now, net)
            },
        )?;
        if self.node == manager {
            self.servers
                .get_mut(&server_group)
                .expect("checked")
                .register_monitor_group(monitor.clone(), origin);
            self.roles
                .insert(monitor, GroupRole::MonitorManager { server_group });
        } else {
            self.g2g_callers.insert(
                monitor.clone(),
                G2gCaller::new(self.node, origin, monitor.clone()),
            );
            self.roles.insert(monitor, GroupRole::MonitorCaller);
        }
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// Issues this origin-group member's copy of a group-to-group call.
    /// All origin members must call in the same relative order.
    /// Completion surfaces as [`NsoOutput::G2gComplete`].
    ///
    /// # Errors
    ///
    /// [`NewtopError::Unbound`] if the monitor group is not attached.
    #[allow(clippy::too_many_arguments)]
    pub fn g2g_invoke(
        &mut self,
        monitor: &GroupId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<u64, NewtopError> {
        let caller = self
            .g2g_callers
            .get_mut(monitor)
            .ok_or_else(|| NewtopError::Unbound(monitor.clone()))?;
        let (number, cmds, done) = caller.invoke(op, args, mode)?;
        if let Some(done) = done {
            self.outputs.push(NsoOutput::G2gComplete {
                origin: done.origin,
                number: done.number,
                replies: done.replies,
            });
        }
        self.run_commands(cmds, now, out);
        Ok(number)
    }

    // --- plain ORB access (the non-replicated baseline) -------------------------

    /// Issues a plain one-to-one ORB request (no groups involved). The
    /// reply surfaces as [`NsoOutput::PlainReply`].
    pub fn plain_invoke(
        &mut self,
        target: &ObjectRef,
        op: &str,
        args: Bytes,
        out: &mut Outbox,
    ) -> RequestId {
        self.orb.invoke(target, op, args, out)
    }

    /// Registers an ordinary (non-group) servant in the node's object
    /// adapter; the ORB answers its requests directly.
    pub fn register_plain_servant(
        &mut self,
        key: &str,
        servant: Box<dyn newtop_orb::servant::Servant>,
    ) {
        self.orb.adapter_mut().activate(key, servant);
    }

    // --- event entry points -------------------------------------------------------

    /// Feeds one incoming packet. Outputs accumulate for
    /// [`Nso::take_outputs`].
    pub fn on_packet(&mut self, pkt: &Packet, now: SimTime, out: &mut Outbox) {
        let Some(incoming) = self.orb.handle_packet(pkt, out) else {
            return;
        };
        match incoming {
            OrbIncoming::Reply { request, result } => {
                if let Some(group) = self.pending_bind_requests.remove(&request) {
                    self.on_bind_ack(group, result.is_ok(), now, out);
                } else if let Some(name) = self.pending_dir_requests.remove(&request) {
                    self.on_dir_reply(name, result, now, out);
                } else {
                    self.outputs.push(NsoOutput::PlainReply { request, result });
                }
            }
            OrbIncoming::Upcall {
                from,
                request_id,
                key,
                operation,
                body,
                response_expected,
            } => {
                if key.as_str() != NSO_OBJECT_KEY {
                    if response_expected {
                        self.orb.send_reply(
                            from,
                            request_id,
                            Err(ServantError::BadOperation(operation)),
                            out,
                        );
                    }
                    return;
                }
                match operation.as_str() {
                    GCS_OPERATION => match GcsMessage::from_cdr(&body) {
                        Ok(msg) => self.on_gcs_message(msg, now, out),
                        Err(_) => self.note_malformed(GCS_OPERATION, now),
                    },
                    INV_OPERATION => match InvMessage::from_cdr(&body) {
                        Ok(msg) => {
                            let events = self.client.on_decoded(msg);
                            self.map_client_events(events, now, out);
                        }
                        Err(_) => self.note_malformed(INV_OPERATION, now),
                    },
                    INV_CTRL_OPERATION => {
                        let result = self.handle_ctrl(&body, now, out);
                        if response_expected {
                            self.orb.send_reply(from, request_id, result, out);
                        }
                    }
                    other => {
                        if response_expected {
                            self.orb.send_reply(
                                from,
                                request_id,
                                Err(ServantError::BadOperation(other.to_owned())),
                                out,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Feeds a GCS protocol message the host already decoded off the
    /// wire — the ingress path for runtimes whose shard workers parse
    /// and unbatch frames in parallel (see [`Nso::decode_gcs_frame`]).
    /// Equivalent to [`Nso::on_packet`] on the frame the message came
    /// from; the message is routed to the shard engine that owns its
    /// group.
    pub fn on_gcs_message(&mut self, msg: GcsMessage, now: SimTime, out: &mut Outbox) {
        let outs = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| self.gcs.on_message(msg, now, net),
        );
        self.route_gcs(outs, now, out);
    }

    /// Pre-decodes a wire frame when it is a oneway GCS protocol
    /// message: returns its constituent [`GcsMessage`]s (batch envelopes
    /// unpacked, in send order) if the frame is a well-formed oneway
    /// `GCS_OPERATION` request for the NSO endpoint, and `None`
    /// otherwise.
    ///
    /// This is the CPU-heavy part of packet ingress, and it is pure —
    /// hosts may run it on parallel decode workers and feed the results
    /// to [`Nso::on_gcs_message`]. Frames it declines (replies, control
    /// traffic, invocation messages, malformed bodies) must be fed to
    /// [`Nso::on_packet`] unchanged so their accounting still happens.
    #[must_use]
    pub fn decode_gcs_frame(payload: &[u8]) -> Option<Vec<GcsMessage>> {
        let Ok(GiopMessage::Request {
            object_key,
            operation,
            response_expected: false,
            body,
            ..
        }) = GiopMessage::from_frame(payload)
        else {
            return None;
        };
        if object_key.as_str() != NSO_OBJECT_KEY || operation != GCS_OPERATION {
            return None;
        }
        match GcsMessage::from_cdr(&body).ok()? {
            GcsMessage::Batch(msgs) => Some(msgs),
            msg => Some(vec![msg]),
        }
    }

    /// Feeds a fired timer whose tag this NSO owns.
    pub fn on_timer(&mut self, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag == BATCH_FLUSH_TAG {
            // The coalescing window closed: everything staged since the
            // timer was armed leaves now, packed per destination. The
            // epilogue of `with_net` re-arms if the flush itself staged
            // anything new (it does not, but handlers racing in the
            // threaded runtime may have).
            self.send_buf.scheduled = false;
            with_net(
                &mut self.orb,
                &mut self.obs,
                out,
                self.batching,
                &mut self.send_buf,
                |net| net.flush(),
            );
            return;
        }
        if self.gcs.owns_tag(tag) {
            let outs = with_net(
                &mut self.orb,
                &mut self.obs,
                out,
                self.batching,
                &mut self.send_buf,
                |net| self.gcs.on_timer(tag, now, net),
            );
            self.route_gcs(outs, now, out);
            return;
        }
        if let Some(timer) = self.nso_timers.remove(&tag) {
            match timer {
                NsoTimer::BindTimeout(group) => {
                    if self.binds.remove(&group).is_some() {
                        self.pending_bind_requests.retain(|_, g| g != &group);
                        self.default_modes.remove(&group);
                        self.fail_bind(group, now);
                    }
                }
                NsoTimer::ResolveTimeout { name, attempt } => {
                    // Only the timer for the attempt still in flight
                    // reacts; stale timers find nothing to do.
                    let live = self
                        .pending_resolves
                        .get(&name)
                        .is_some_and(|progress| progress.next == attempt);
                    if live {
                        self.pending_dir_requests.retain(|_, n| n != &name);
                        self.advance_resolve(&name, now, out);
                    }
                }
            }
        }
    }

    // --- internals ---------------------------------------------------------------

    fn alloc_tag(&mut self, timer: NsoTimer) -> u64 {
        let tag = tags::NSO_BASE + self.next_tag;
        self.next_tag += 1;
        self.nso_timers.insert(tag, timer);
        tag
    }

    /// Server side of the binding-control protocol.
    fn handle_ctrl(
        &mut self,
        body: &[u8],
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<Bytes, ServantError> {
        let msg = CtrlMessage::from_cdr(body).map_err(|_| {
            self.note_malformed(INV_CTRL_OPERATION, now);
            ServantError::User(Bytes::from(
                NewtopError::Malformed(INV_CTRL_OPERATION).to_string(),
            ))
        })?;
        match msg {
            CtrlMessage::BindRequest {
                group,
                client,
                server_group,
                members,
                closed,
                ordering,
                time_silence_micros,
                fanout,
            } => {
                if !self.servers.contains_key(&server_group) {
                    return Err(ServantError::User(Bytes::from_static(
                        b"not a member of that server group",
                    )));
                }
                if !self.roles.contains_key(&group) {
                    let config = GroupConfig {
                        ordering,
                        liveness: Liveness::EventDriven,
                        time_silence: Duration::from_micros(time_silence_micros),
                        fanout,
                        ..GroupConfig::default()
                    };
                    let outs = with_net(
                        &mut self.orb,
                        &mut self.obs,
                        out,
                        self.batching,
                        &mut self.send_buf,
                        |net| {
                            self.gcs
                                .create_group(group.clone(), config, members, now, net)
                        },
                    )
                    .map_err(|_| {
                        ServantError::User(Bytes::from_static(b"group creation failed"))
                    })?;
                    self.servers
                        .get_mut(&server_group)
                        .ok_or_else(|| {
                            ServantError::User(Bytes::from_static(b"server group vanished"))
                        })?
                        .register_client_group(group.clone(), client, closed);
                    self.roles
                        .insert(group.clone(), GroupRole::Served { server_group });
                    self.route_gcs(outs, now, out);
                }
                Ok(Bytes::new())
            }
        }
    }

    /// Client side: one server acknowledged (or refused) a bind.
    fn on_bind_ack(&mut self, group: GroupId, ok: bool, now: SimTime, out: &mut Outbox) {
        let Some(bind) = self.binds.get_mut(&group) else {
            return; // timed out already
        };
        if !ok {
            self.binds.remove(&group);
            self.pending_bind_requests.retain(|_, g| g != &group);
            self.default_modes.remove(&group);
            self.fail_bind(group, now);
            return;
        }
        bind.outstanding = bind.outstanding.saturating_sub(1);
        if bind.outstanding > 0 {
            return;
        }
        let Some(bind) = self.binds.remove(&group) else {
            return; // raced with a timeout that already tore it down
        };
        let created = with_net(
            &mut self.orb,
            &mut self.obs,
            out,
            self.batching,
            &mut self.send_buf,
            |net| {
                self.gcs.create_group(
                    group.clone(),
                    bind.config.clone(),
                    bind.members.clone(),
                    now,
                    net,
                )
            },
        );
        let outs = match created {
            Ok(o) => o,
            Err(_) => {
                self.default_modes.remove(&group);
                self.fail_bind(group, now);
                return;
            }
        };
        self.client
            .register_binding(group.clone(), bind.style.clone(), bind.server_count);
        self.roles.insert(group.clone(), GroupRole::ClientBinding);
        self.obs.record(
            now,
            TraceEvent::BindReady {
                group: group.as_str().to_string(),
            },
        );
        self.outputs.push(NsoOutput::BindingReady { group });
        self.route_gcs(outs, now, out);
    }

    fn run_commands(&mut self, cmds: Vec<InvCommand>, now: SimTime, out: &mut Outbox) {
        for cmd in cmds {
            match cmd {
                InvCommand::Multicast { group, payload } => {
                    let _ = with_net(
                        &mut self.orb,
                        &mut self.obs,
                        out,
                        self.batching,
                        &mut self.send_buf,
                        |net| {
                            self.gcs
                                .multicast(&group, DeliveryOrder::Total, payload, now, net)
                        },
                    );
                }
                InvCommand::Direct { to, payload } => {
                    self.orb.oneway(
                        &ObjectRef::new(to, NSO_OBJECT_KEY),
                        INV_OPERATION,
                        payload,
                        out,
                    );
                }
            }
        }
    }

    fn map_client_events(&mut self, events: Vec<ClientEvent>, now: SimTime, out: &mut Outbox) {
        for ev in events {
            match ev {
                ClientEvent::Complete { call, replies } => {
                    self.obs.metrics.incr("inv.calls_completed");
                    if let Some(t0) = self.call_issued.remove(&call.number) {
                        self.obs
                            .metrics
                            .record_latency("inv.latency", now.saturating_since(t0));
                    }
                    self.outputs
                        .push(NsoOutput::InvocationComplete { call, replies });
                }
                ClientEvent::BindingBroken {
                    group,
                    manager,
                    pending_calls,
                } => {
                    self.obs.record(
                        now,
                        TraceEvent::Rebind {
                            group: group.as_str().to_string(),
                            manager,
                        },
                    );
                    self.roles.remove(&group);
                    self.default_modes.remove(&group);
                    // A broken binding means its manager is gone; any
                    // cached record naming it — and the record this
                    // binding came from — must be re-resolved.
                    self.dir_cache.invalidate_member(manager);
                    if let Some(name) = self.resolved_origin.remove(&group) {
                        self.dir_cache.invalidate(&name);
                    }
                    let _ = with_net(
                        &mut self.orb,
                        &mut self.obs,
                        out,
                        self.batching,
                        &mut self.send_buf,
                        |net| self.gcs.leave_group(&group, now, net),
                    );
                    self.outputs.push(NsoOutput::BindingBroken {
                        group,
                        manager,
                        pending_calls,
                    });
                }
            }
        }
    }

    fn route_gcs(&mut self, outs: Vec<GcsOutput>, now: SimTime, out: &mut Outbox) {
        for o in outs {
            match o {
                GcsOutput::Delivered {
                    group,
                    sender,
                    payload,
                    ..
                } => self.route_delivery(&group, sender, payload, now, out),
                GcsOutput::ViewInstalled {
                    group,
                    view,
                    departed,
                    ..
                } => {
                    // A departed member makes any cached directory
                    // record that names it suspect.
                    for m in &departed {
                        self.dir_cache.invalidate_member(*m);
                    }
                    self.route_view_change(&group, &view, now, out);
                    self.outputs.push(NsoOutput::ViewChanged { group, view });
                }
                GcsOutput::LeftGroup { group } => {
                    self.roles.remove(&group);
                }
            }
        }
    }

    fn route_delivery(
        &mut self,
        group: &GroupId,
        sender: NodeId,
        payload: Bytes,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(role) = self.roles.get(group).cloned() else {
            return;
        };
        match role {
            GroupRole::ClientBinding => match InvMessage::from_cdr(&payload) {
                Ok(msg) => {
                    let events = self.client.on_decoded(msg);
                    self.map_client_events(events, now, out);
                }
                Err(_) => self.note_malformed(INV_OPERATION, now),
            },
            GroupRole::ServerGroup => {
                self.serve_delivery(group.clone(), group, sender, &payload, now, out);
            }
            GroupRole::Served { server_group } | GroupRole::MonitorManager { server_group } => {
                self.serve_delivery(server_group, group, sender, &payload, now, out);
            }
            GroupRole::MonitorCaller => {
                if let Some(caller) = self.g2g_callers.get_mut(group) {
                    if let Some(done) = caller.on_delivered(group, &payload) {
                        self.outputs.push(NsoOutput::G2gComplete {
                            origin: done.origin,
                            number: done.number,
                            replies: done.replies,
                        });
                    }
                }
            }
            GroupRole::Peer => {
                self.outputs.push(NsoOutput::PeerDeliver {
                    group: group.clone(),
                    sender,
                    payload,
                });
            }
        }
    }

    /// Routes a delivery to a server core, running the group servant.
    #[allow(clippy::too_many_arguments)]
    fn serve_delivery(
        &mut self,
        server_group: GroupId,
        delivered_in: &GroupId,
        sender: NodeId,
        payload: &[u8],
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Ok(msg) = InvMessage::from_cdr(payload) else {
            self.note_malformed(INV_OPERATION, now);
            return;
        };
        let cmds = {
            let Some(core) = self.servers.get_mut(&server_group) else {
                return;
            };
            let mut servant = self.servants.get_mut(&server_group);
            let mut exec = |op: &str, args: &[u8]| -> Bytes {
                match servant {
                    Some(ref mut s) => s.invoke(op, args),
                    None => Bytes::new(),
                }
            };
            core.on_decoded(delivered_in, sender, msg, &mut exec)
        };
        self.drain_server_events(&server_group, now);
        self.run_commands(cmds, now, out);
    }

    /// Counts and traces a message body that failed to unmarshal; the
    /// condition is queryable as the `decode.malformed` metric and
    /// renders as [`NewtopError::Malformed`] where an error channel
    /// exists (the binding-control request path).
    fn note_malformed(&mut self, operation: &'static str, now: SimTime) {
        self.obs.metrics.incr("decode.malformed");
        self.obs.record(
            now,
            TraceEvent::MalformedDropped {
                operation: operation.to_string(),
            },
        );
    }

    /// Stamps and records the trace events a server core accumulated
    /// while processing (server cores have no clock of their own).
    fn drain_server_events(&mut self, server_group: &GroupId, now: SimTime) {
        if let Some(core) = self.servers.get_mut(server_group) {
            for ev in core.take_events() {
                self.obs.record(now, ev);
            }
        }
    }

    fn route_view_change(&mut self, group: &GroupId, view: &View, now: SimTime, out: &mut Outbox) {
        let Some(role) = self.roles.get(group).cloned() else {
            return;
        };
        match role {
            GroupRole::ClientBinding => {
                let events = self.client.on_binding_view_change(group, view.members());
                self.map_client_events(events, now, out);
            }
            GroupRole::ServerGroup => {
                let (replayed, quorum_cmds) = {
                    let Some(core) = self.servers.get_mut(group) else {
                        return;
                    };
                    let quorum_cmds = core.set_server_view(view.members().to_vec());
                    let was = self.was_primary.insert(group.clone(), core.is_primary());
                    if core.replication() == Replication::Passive
                        && core.is_primary()
                        && was == Some(false)
                    {
                        let mut servant = self.servants.get_mut(group);
                        let mut exec = |op: &str, args: &[u8]| -> Bytes {
                            match servant {
                                Some(ref mut s) => s.invoke(op, args),
                                None => Bytes::new(),
                            }
                        };
                        (Some(core.promote(&mut exec)), quorum_cmds)
                    } else {
                        (None, quorum_cmds)
                    }
                };
                self.drain_server_events(group, now);
                self.run_commands(quorum_cmds, now, out);
                if let Some(replayed) = replayed {
                    self.outputs.push(NsoOutput::Promoted {
                        group: group.clone(),
                        replayed,
                    });
                }
            }
            GroupRole::Served { server_group } => {
                // If the client departed, the binding is dead: drop it.
                if view.len() <= 1 {
                    if let Some(core) = self.servers.get_mut(&server_group) {
                        core.remove_client_group(group);
                    }
                    self.roles.remove(group);
                    let _ = with_net(
                        &mut self.orb,
                        &mut self.obs,
                        out,
                        self.batching,
                        &mut self.send_buf,
                        |net| self.gcs.leave_group(group, now, net),
                    );
                }
            }
            GroupRole::MonitorManager { .. } | GroupRole::MonitorCaller | GroupRole::Peer => {}
        }
    }
}
