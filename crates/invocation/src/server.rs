//! The server side of request-reply invocation: execution, request
//! management, reply collection, retry deduplication and passive backups.
//!
//! One [`ServerCore`] runs in each member of a server group. It plays two
//! roles at once:
//!
//! * **replica** — executes `Forwarded` requests delivered in the server
//!   group's total order (or logs them, as a passive backup);
//! * **request manager** — for the client/server groups where this node
//!   is the bound server: distributes client requests into the server
//!   group, gathers `ServerReply`s (one/majority/all), relays the answer,
//!   and caches it so a rebound client's retry is answered without
//!   re-execution (§4.1).
//!
//! It also implements the §4.2 optimisations (restricted group is a
//! binding policy — see [`ServerCore::designated_manager`] — and
//! asynchronous forwarding short-circuits wait-for-first requests), and
//! the group-to-group manager role of Fig. 6.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bytes::Bytes;

use newtop_gcs::group::GroupId;
use newtop_net::site::NodeId;
use newtop_net::trace::TraceEvent;
use newtop_orb::cdr::CdrDecode;

use crate::api::{CallId, InvCommand, InvMessage, OpenOptimisation, Replication, ReplyMode};

/// The application executor: maps `(operation, args)` to a marshalled
/// result. Supplied by the owning NSO at event-handling time so the core
/// stays decoupled from servant registration.
pub type Exec<'a> = &'a mut dyn FnMut(&str, &[u8]) -> Bytes;

#[derive(Clone, Debug)]
enum CachedReply {
    Direct(Bytes),
    Relayed(Vec<(NodeId, Bytes)>),
}

#[derive(Clone, Debug)]
struct ManagedCall {
    client_group: GroupId,
    mode: ReplyMode,
    needed: usize,
    replies: Vec<(NodeId, Bytes)>,
    /// `Some((monitor_group, origin_group, number))` when this call was
    /// forwarded on behalf of a client *group* (Fig. 6).
    g2g: Option<(GroupId, GroupId, u64)>,
}

#[derive(Clone, Debug)]
struct ClientGroupState {
    /// The bound client (diagnostics; requests carry the client in their
    /// call id).
    #[allow(dead_code)]
    client: NodeId,
    /// True if this client/server group contains every server (closed
    /// style); false for an open two-member group.
    closed: bool,
}

#[derive(Clone, Debug)]
struct MonitorState {
    origin: GroupId,
    /// Numbers already forwarded into the server group (duplicates from
    /// the other origin-group members are filtered, §4.3).
    forwarded: BTreeSet<u64>,
}

/// Server-side invocation state machine. See the [module docs](self).
pub struct ServerCore {
    node: NodeId,
    server_group: GroupId,
    server_members: Vec<NodeId>,
    replication: Replication,
    optimisation: OpenOptimisation,
    client_groups: BTreeMap<GroupId, ClientGroupState>,
    monitor_groups: BTreeMap<GroupId, MonitorState>,
    managed: BTreeMap<CallId, ManagedCall>,
    reply_cache: BTreeMap<NodeId, (u64, CachedReply)>,
    /// Passive backups: requests logged for replay on promotion. Bounded
    /// by `max_backlog`; the oldest entry is dropped on overflow.
    backlog: Vec<(CallId, String, Bytes)>,
    /// Admission bound on `backlog`.
    max_backlog: usize,
    /// Backlog entries dropped by the bound since creation.
    backlog_shed: u64,
    /// Per client: the last executed call number and its result (§4.1:
    /// "servers retain the data of the last reply message"), so a retried
    /// call is answered without re-execution.
    last_exec: BTreeMap<NodeId, (u64, Bytes)>,
    /// Counter for synthesising call ids on the g2g forwarded leg.
    next_local_call: u64,
    /// Protocol events produced by handlers, drained (and timestamped) by
    /// the owning NSO via [`ServerCore::take_events`].
    events: Vec<TraceEvent>,
}

impl fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerCore")
            .field("node", &self.node)
            .field("server_group", &self.server_group)
            .field("client_groups", &self.client_groups.len())
            .field("managed", &self.managed.len())
            .field("backlog", &self.backlog.len())
            .finish()
    }
}

impl ServerCore {
    /// Creates the server core for one member of `server_group`.
    #[must_use]
    pub fn new(
        node: NodeId,
        server_group: GroupId,
        replication: Replication,
        optimisation: OpenOptimisation,
    ) -> Self {
        ServerCore {
            node,
            server_group,
            server_members: vec![node],
            replication,
            optimisation,
            client_groups: BTreeMap::new(),
            monitor_groups: BTreeMap::new(),
            managed: BTreeMap::new(),
            reply_cache: BTreeMap::new(),
            backlog: Vec::new(),
            max_backlog: newtop_flow::FlowConfig::default().max_pending_calls,
            backlog_shed: 0,
            last_exec: BTreeMap::new(),
            next_local_call: 1,
            events: Vec::new(),
        }
    }

    /// Drains the protocol events produced since the last call. The owner
    /// timestamps them into its observability log; the core itself has no
    /// clock.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// The owning node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The server group this replica belongs to.
    #[must_use]
    pub fn server_group(&self) -> &GroupId {
        &self.server_group
    }

    /// Updates the server group's membership (call on every view change).
    ///
    /// Outstanding reply collections are re-quorated against the surviving
    /// replicas — a dead replica will never answer — and any call thereby
    /// satisfied is finished; the returned commands relay its replies.
    pub fn set_server_view(&mut self, members: Vec<NodeId>) -> Vec<InvCommand> {
        self.server_members = members;
        self.server_members.sort_unstable();
        let repliers = if self.replication == Replication::Passive {
            1
        } else {
            self.server_members.len()
        };
        let ready: Vec<CallId> = self
            .managed
            .iter_mut()
            .filter_map(|(&call, m)| {
                m.needed = m.mode.needed(repliers).max(1);
                (m.replies.len() >= m.needed).then_some(call)
            })
            .collect();
        let mut commands = Vec::new();
        for call in ready {
            commands.extend(self.finish_managed(call));
        }
        commands
    }

    /// Completes a managed call whose quorum is met: relay the replies and
    /// cache them for retries.
    fn finish_managed(&mut self, call: CallId) -> Vec<InvCommand> {
        let Some(m) = self.managed.remove(&call) else {
            return Vec::new();
        };
        match m.g2g {
            None => {
                self.reply_cache.insert(
                    call.client,
                    (call.number, CachedReply::Relayed(m.replies.clone())),
                );
                self.events.push(TraceEvent::ReplyCollected {
                    client: call.client,
                    number: call.number,
                });
                vec![InvCommand::multicast(
                    m.client_group,
                    &InvMessage::RelayedReply {
                        call,
                        replies: m.replies,
                    },
                )]
            }
            Some((monitor, origin, number)) => vec![InvCommand::multicast(
                monitor,
                &InvMessage::G2gReply {
                    origin,
                    number,
                    replies: m.replies,
                },
            )],
        }
    }

    /// The designated request manager under the restricted-group
    /// optimisation: the lowest-ranked live server (which the asymmetric
    /// protocol also makes the sequencer, and passive replication the
    /// primary — §4.2).
    #[must_use]
    pub fn designated_manager(&self) -> Option<NodeId> {
        self.server_members.first().copied()
    }

    /// Whether this node is the current primary (passive replication).
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.designated_manager() == Some(self.node)
    }

    /// The replication discipline of this server group.
    #[must_use]
    pub fn replication(&self) -> Replication {
        self.replication
    }

    /// The open-group optimisation in force.
    #[must_use]
    pub fn optimisation(&self) -> OpenOptimisation {
        self.optimisation
    }

    /// Registers a client/server group this node serves.
    pub fn register_client_group(&mut self, group: GroupId, client: NodeId, closed: bool) {
        self.client_groups
            .insert(group, ClientGroupState { client, closed });
    }

    /// Forgets a client/server group (disbanded).
    pub fn remove_client_group(&mut self, group: &GroupId) {
        self.client_groups.remove(group);
        self.managed.retain(|_, m| &m.client_group != group);
    }

    /// Registers a client monitor group (Fig. 6): this node is the
    /// request manager for group-to-group calls originating from
    /// `origin`.
    pub fn register_monitor_group(&mut self, monitor: GroupId, origin: GroupId) {
        self.monitor_groups.insert(
            monitor,
            MonitorState {
                origin,
                forwarded: BTreeSet::new(),
            },
        );
    }

    /// Internal-state summary for debugging.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_state(&self) -> String {
        format!(
            "members={:?} managed={:?} last_exec={:?} reply_cache_nums={:?} backlog={}",
            self.server_members,
            self.managed
                .iter()
                .map(|(c, m)| (c.to_string(), m.needed, m.replies.len()))
                .collect::<Vec<_>>(),
            self.last_exec
                .iter()
                .map(|(c, (n, _))| (c.to_string(), *n))
                .collect::<Vec<_>>(),
            self.reply_cache
                .iter()
                .map(|(c, (n, _))| (c.to_string(), *n))
                .collect::<Vec<_>>(),
            self.backlog.len(),
        )
    }

    /// Number of requests logged by a passive backup.
    #[must_use]
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Sets the most requests a passive backup logs for replay (clamped
    /// to at least 1); the oldest is dropped when a new one overflows it.
    #[must_use]
    pub fn with_max_backlog(mut self, max: usize) -> Self {
        self.max_backlog = max.max(1);
        self
    }

    /// Backlog entries dropped by the bound since creation.
    #[must_use]
    pub fn backlog_shed_count(&self) -> u64 {
        self.backlog_shed
    }

    /// Passive replication: replay the logged requests after promotion to
    /// primary. Returns how many were executed.
    pub fn promote(&mut self, exec: Exec<'_>) -> usize {
        let backlog = std::mem::take(&mut self.backlog);
        let mut count = 0;
        for (call, op, args) in backlog {
            if self.execute_once(call, &op, &args, exec).is_some() {
                count += 1;
            }
        }
        self.events.push(TraceEvent::Promoted {
            group: self.server_group.as_str().to_string(),
            replayed: count,
        });
        count
    }

    /// Handles a message delivered in `group` (a server, client/server or
    /// monitor group), returning the commands to execute.
    pub fn on_delivered(
        &mut self,
        group: &GroupId,
        sender: NodeId,
        payload: &[u8],
        exec: Exec<'_>,
    ) -> Vec<InvCommand> {
        let Ok(msg) = InvMessage::from_cdr(payload) else {
            return Vec::new();
        };
        self.on_decoded(group, sender, msg, exec)
    }

    /// Like [`ServerCore::on_delivered`] for an already-unmarshalled
    /// message. Hosts that decode at their ingest boundary (to count
    /// malformed input) use this to avoid unmarshalling twice.
    pub fn on_decoded(
        &mut self,
        group: &GroupId,
        sender: NodeId,
        msg: InvMessage,
        exec: Exec<'_>,
    ) -> Vec<InvCommand> {
        match msg {
            InvMessage::Request {
                call,
                op,
                args,
                mode,
            } => self.on_request(group, call, &op, args, mode, exec),
            InvMessage::Forwarded {
                call,
                op,
                args,
                mode: _,
                manager,
                no_reply,
            } => self.on_forwarded(group, call, &op, args, manager, no_reply, exec),
            InvMessage::ServerReply {
                call,
                replier,
                result,
            } => self.on_server_reply(group, call, replier, result),
            InvMessage::G2gRequest {
                origin,
                number,
                op,
                args,
                mode,
            } => self.on_g2g_request(group, sender, origin, number, &op, args, mode),
            // Client-side messages; nothing for a server to do.
            InvMessage::RelayedReply { .. }
            | InvMessage::DirectReply { .. }
            | InvMessage::G2gReply { .. } => Vec::new(),
        }
    }

    /// A client request arrived in a client/server group.
    fn on_request(
        &mut self,
        group: &GroupId,
        call: CallId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        exec: Exec<'_>,
    ) -> Vec<InvCommand> {
        if call.client == self.node {
            return Vec::new(); // our own multicast looping back
        }
        let Some(cg) = self.client_groups.get(group) else {
            return Vec::new(); // not a group we serve
        };
        let closed = cg.closed;
        // Retry deduplication (§4.1): answer repeats from the cache, drop
        // stale numbers.
        match self.reply_cache.get(&call.client) {
            Some((cached_num, cached)) if *cached_num == call.number => {
                self.events.push(TraceEvent::RetryDeduped {
                    client: call.client,
                    number: call.number,
                });
                return match cached {
                    CachedReply::Direct(result) => {
                        if mode == ReplyMode::OneWay {
                            Vec::new()
                        } else {
                            vec![InvCommand::direct(
                                call.client,
                                &InvMessage::DirectReply {
                                    call,
                                    replier: self.node,
                                    result: result.clone(),
                                },
                            )]
                        }
                    }
                    CachedReply::Relayed(replies) => vec![InvCommand::multicast(
                        group.clone(),
                        &InvMessage::RelayedReply {
                            call,
                            replies: replies.clone(),
                        },
                    )],
                };
            }
            Some((cached_num, _)) if *cached_num > call.number => return Vec::new(),
            _ => {}
        }
        if closed {
            self.handle_closed_request(group, call, op, &args, mode, exec)
        } else {
            self.handle_open_request(group, call, op, args, mode, exec)
        }
    }

    /// Executes a call at most once per client call number, answering
    /// retries from the retained last result. Returns `None` for stale
    /// (older-than-last) calls.
    fn execute_once(
        &mut self,
        call: CallId,
        op: &str,
        args: &[u8],
        exec: Exec<'_>,
    ) -> Option<Bytes> {
        match self.last_exec.get(&call.client) {
            Some((num, result)) if *num == call.number => {
                let result = result.clone();
                self.events.push(TraceEvent::RetryDeduped {
                    client: call.client,
                    number: call.number,
                });
                Some(result)
            }
            Some((num, _)) if *num > call.number => None,
            _ => {
                let result = exec(op, args);
                self.last_exec
                    .insert(call.client, (call.number, result.clone()));
                self.events.push(TraceEvent::Executed {
                    client: call.client,
                    number: call.number,
                });
                Some(result)
            }
        }
    }

    /// Closed group: every server received the request in total order;
    /// execute and reply straight to the client.
    fn handle_closed_request(
        &mut self,
        _group: &GroupId,
        call: CallId,
        op: &str,
        args: &[u8],
        mode: ReplyMode,
        exec: Exec<'_>,
    ) -> Vec<InvCommand> {
        let Some(result) = self.execute_once(call, op, args, exec) else {
            return Vec::new();
        };
        self.reply_cache.insert(
            call.client,
            (call.number, CachedReply::Direct(result.clone())),
        );
        if mode == ReplyMode::OneWay {
            return Vec::new();
        }
        vec![InvCommand::direct(
            call.client,
            &InvMessage::DirectReply {
                call,
                replier: self.node,
                result,
            },
        )]
    }

    /// Open group: this node is the request manager for the call
    /// (Fig. 4 steps (i)–(ii)).
    fn handle_open_request(
        &mut self,
        group: &GroupId,
        call: CallId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        exec: Exec<'_>,
    ) -> Vec<InvCommand> {
        let mut commands = Vec::new();
        self.events.push(TraceEvent::RequestForwarded {
            client: call.client,
            number: call.number,
        });
        let async_first =
            self.optimisation == OpenOptimisation::AsyncForwarding && mode == ReplyMode::First;
        if async_first {
            // §4.2: answer from here, forward one-way.
            let Some(result) = self.execute_once(call, op, &args, exec) else {
                return Vec::new();
            };
            let replies = vec![(self.node, result)];
            self.reply_cache.insert(
                call.client,
                (call.number, CachedReply::Relayed(replies.clone())),
            );
            commands.push(InvCommand::multicast(
                group.clone(),
                &InvMessage::RelayedReply { call, replies },
            ));
            commands.push(InvCommand::multicast(
                self.server_group.clone(),
                &InvMessage::Forwarded {
                    call,
                    op: op.to_owned(),
                    args,
                    mode,
                    manager: self.node,
                    no_reply: true,
                },
            ));
            return commands;
        }
        let no_reply = mode == ReplyMode::OneWay;
        if !no_reply {
            let repliers = if self.replication == Replication::Passive {
                1 // only the primary answers
            } else {
                self.server_members.len()
            };
            self.managed.insert(
                call,
                ManagedCall {
                    client_group: group.clone(),
                    mode,
                    needed: mode.needed(repliers).max(1),
                    replies: Vec::new(),
                    g2g: None,
                },
            );
        }
        commands.push(InvCommand::multicast(
            self.server_group.clone(),
            &InvMessage::Forwarded {
                call,
                op: op.to_owned(),
                args,
                mode,
                manager: self.node,
                no_reply,
            },
        ));
        commands
    }

    /// A forwarded request delivered in the server group's total order
    /// (Fig. 4 step (ii)→(iii)).
    #[allow(clippy::too_many_arguments)]
    fn on_forwarded(
        &mut self,
        group: &GroupId,
        call: CallId,
        op: &str,
        args: Bytes,
        _manager: NodeId,
        no_reply: bool,
        exec: Exec<'_>,
    ) -> Vec<InvCommand> {
        if group != &self.server_group {
            return Vec::new();
        }
        let passive_backup = self.replication == Replication::Passive && !self.is_primary();
        if passive_backup {
            // Receive but do not act upon (§4.2); kept for promotion. The
            // decoded frame already owns the argument bytes, so the backlog
            // shares them instead of re-copying.
            let seen = self
                .last_exec
                .get(&call.client)
                .is_some_and(|(num, _)| *num >= call.number);
            if !seen {
                if self.backlog.len() >= self.max_backlog {
                    // Keep the newest requests: on promotion the primary's
                    // reply cache masks re-sent old calls, while a dropped
                    // recent call is retried by its client (§4.1).
                    self.backlog.remove(0);
                    self.backlog_shed += 1;
                }
                self.backlog.push((call, op.to_owned(), args));
            }
            return Vec::new();
        }
        let Some(result) = self.execute_once(call, op, &args, exec) else {
            return Vec::new();
        };
        if no_reply {
            return Vec::new();
        }
        // Every replica multicasts its reply within the server group
        // (Fig. 4(iii)); the manager collects.
        vec![InvCommand::multicast(
            self.server_group.clone(),
            &InvMessage::ServerReply {
                call,
                replier: self.node,
                result,
            },
        )]
    }

    /// A replica's reply delivered in the server group (Fig. 4 step
    /// (iii)→(iv)): the manager gathers one/majority/all and relays.
    fn on_server_reply(
        &mut self,
        group: &GroupId,
        call: CallId,
        replier: NodeId,
        result: Bytes,
    ) -> Vec<InvCommand> {
        if group != &self.server_group {
            return Vec::new();
        }
        let Some(m) = self.managed.get_mut(&call) else {
            return Vec::new(); // not the manager for this call
        };
        if m.replies.iter().any(|(n, _)| *n == replier) {
            return Vec::new();
        }
        m.replies.push((replier, result));
        if m.replies.len() < m.needed {
            return Vec::new();
        }
        self.finish_managed(call)
    }

    /// A group-to-group request copy delivered in a monitor group. The
    /// manager forwards the first copy into the server group and filters
    /// the rest (§4.3).
    #[allow(clippy::too_many_arguments)]
    fn on_g2g_request(
        &mut self,
        group: &GroupId,
        _sender: NodeId,
        origin: GroupId,
        number: u64,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
    ) -> Vec<InvCommand> {
        let Some(ms) = self.monitor_groups.get_mut(group) else {
            return Vec::new(); // not the manager of this monitor group
        };
        if ms.origin != origin || !ms.forwarded.insert(number) {
            return Vec::new(); // duplicate copy filtered out
        }
        let call = CallId {
            client: self.node,
            number: self.next_local_call,
        };
        self.next_local_call += 1;
        if mode != ReplyMode::OneWay {
            let repliers = if self.replication == Replication::Passive {
                1
            } else {
                self.server_members.len()
            };
            self.managed.insert(
                call,
                ManagedCall {
                    client_group: group.clone(),
                    mode,
                    needed: mode.needed(repliers).max(1),
                    replies: Vec::new(),
                    g2g: Some((group.clone(), origin, number)),
                },
            );
        }
        vec![InvCommand::multicast(
            self.server_group.clone(),
            &InvMessage::Forwarded {
                call,
                op: op.to_owned(),
                args,
                mode,
                manager: self.node,
                no_reply: mode == ReplyMode::OneWay,
            },
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_orb::cdr::CdrEncode;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn gs() -> GroupId {
        GroupId::new("servers")
    }

    fn cs() -> GroupId {
        GroupId::new("cs")
    }

    fn enc(m: &InvMessage) -> Vec<u8> {
        m.to_cdr().to_vec()
    }

    /// An executor that answers `"{op}:{node}"` and counts invocations.
    fn counting_exec(node: u32, count: &mut u32) -> impl FnMut(&str, &[u8]) -> Bytes + '_ {
        move |op: &str, _args: &[u8]| {
            *count += 1;
            Bytes::from(format!("{op}:{node}"))
        }
    }

    fn active_server(node: u32) -> ServerCore {
        let mut s = ServerCore::new(n(node), gs(), Replication::Active, OpenOptimisation::None);
        s.set_server_view(vec![n(1), n(2), n(3)]);
        s
    }

    fn request(call_no: u64, mode: ReplyMode) -> InvMessage {
        InvMessage::Request {
            call: CallId {
                client: n(0),
                number: call_no,
            },
            op: "rand".to_owned(),
            args: Bytes::new(),
            mode,
        }
    }

    #[test]
    fn open_manager_forwards_into_server_group() {
        let mut s = active_server(1);
        s.register_client_group(cs(), n(0), false);
        let mut count = 0;
        let cmds = {
            let mut exec = counting_exec(1, &mut count);
            s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::All)), &mut exec)
        };
        assert_eq!(count, 0, "manager does not execute at request time");
        assert_eq!(cmds.len(), 1);
        let InvCommand::Multicast { group, payload } = &cmds[0] else {
            panic!("expected multicast");
        };
        assert_eq!(group, &gs());
        assert!(matches!(
            InvMessage::from_cdr(payload).unwrap(),
            InvMessage::Forwarded {
                no_reply: false,
                ..
            }
        ));
    }

    #[test]
    fn replicas_execute_forwarded_and_reply_in_group() {
        let mut s = active_server(2);
        let fwd = InvMessage::Forwarded {
            call: CallId {
                client: n(0),
                number: 1,
            },
            op: "rand".to_owned(),
            args: Bytes::new(),
            mode: ReplyMode::All,
            manager: n(1),
            no_reply: false,
        };
        let mut count = 0;
        let cmds = {
            let mut exec = counting_exec(2, &mut count);
            s.on_delivered(&gs(), n(1), &enc(&fwd), &mut exec)
        };
        assert_eq!(count, 1);
        let InvCommand::Multicast { group, payload } = &cmds[0] else {
            panic!("expected multicast");
        };
        assert_eq!(group, &gs());
        let InvMessage::ServerReply {
            replier, result, ..
        } = InvMessage::from_cdr(payload).unwrap()
        else {
            panic!("expected server reply");
        };
        assert_eq!(replier, n(2));
        assert_eq!(&result[..], b"rand:2");
        // Re-delivery (a retried call) does not re-execute, but the
        // retained reply is resent so the new manager can collect it.
        let cmds = {
            let mut exec = counting_exec(2, &mut count);
            s.on_delivered(&gs(), n(1), &enc(&fwd), &mut exec)
        };
        assert_eq!(count, 1, "no re-execution on retry");
        assert_eq!(cmds.len(), 1, "cached reply resent");
    }

    #[test]
    fn manager_collects_and_relays_wait_for_all() {
        let mut s = active_server(1);
        s.register_client_group(cs(), n(0), false);
        let mut exec = |op: &str, _: &[u8]| Bytes::from(format!("{op}:1"));
        s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::All)), &mut exec);
        let call = CallId {
            client: n(0),
            number: 1,
        };
        let mut relay = Vec::new();
        for replier in [1u32, 2, 3] {
            let reply = InvMessage::ServerReply {
                call,
                replier: n(replier),
                result: Bytes::from(format!("r{replier}")),
            };
            relay = s.on_delivered(&gs(), n(replier), &enc(&reply), &mut exec);
        }
        assert_eq!(relay.len(), 1, "relayed only after all three replies");
        let InvCommand::Multicast { group, payload } = &relay[0] else {
            panic!("expected multicast");
        };
        assert_eq!(group, &cs());
        let InvMessage::RelayedReply { replies, .. } = InvMessage::from_cdr(payload).unwrap()
        else {
            panic!("expected relayed reply");
        };
        assert_eq!(replies.len(), 3);
    }

    #[test]
    fn manager_retry_is_served_from_cache() {
        let mut s = active_server(1);
        s.register_client_group(cs(), n(0), false);
        let mut exec = |op: &str, _: &[u8]| Bytes::from(format!("{op}:1"));
        s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::First)), &mut exec);
        let call = CallId {
            client: n(0),
            number: 1,
        };
        let reply = InvMessage::ServerReply {
            call,
            replier: n(2),
            result: Bytes::from_static(b"r"),
        };
        s.on_delivered(&gs(), n(2), &enc(&reply), &mut exec);
        // The client rebinds (or the reply was lost) and retries: the
        // cached answer comes back without touching the server group.
        let cmds = s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::First)), &mut exec);
        assert_eq!(cmds.len(), 1);
        let InvCommand::Multicast { group, payload } = &cmds[0] else {
            panic!("expected multicast");
        };
        assert_eq!(group, &cs());
        assert!(matches!(
            InvMessage::from_cdr(payload).unwrap(),
            InvMessage::RelayedReply { .. }
        ));
        // An older (stale) call number is dropped entirely.
        let mut s2cmds =
            s.on_delivered(&cs(), n(0), &enc(&request(0, ReplyMode::First)), &mut exec);
        assert!(s2cmds.is_empty());
        s2cmds.clear();
    }

    #[test]
    fn closed_group_servers_reply_directly() {
        let mut s = active_server(2);
        s.register_client_group(cs(), n(0), true);
        let mut count = 0;
        let cmds = {
            let mut exec = counting_exec(2, &mut count);
            s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::All)), &mut exec)
        };
        assert_eq!(count, 1, "closed group: execute immediately");
        assert_eq!(cmds.len(), 1);
        let InvCommand::Direct { to, payload } = &cmds[0] else {
            panic!("expected direct reply");
        };
        assert_eq!(*to, n(0));
        assert!(matches!(
            InvMessage::from_cdr(payload).unwrap(),
            InvMessage::DirectReply { .. }
        ));
        // A retry of the same call is answered from the cache without
        // re-execution.
        let cmds = {
            let mut exec = counting_exec(2, &mut count);
            s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::All)), &mut exec)
        };
        assert_eq!(count, 1);
        assert_eq!(cmds.len(), 1);
    }

    #[test]
    fn one_way_requests_produce_no_replies() {
        let mut s = active_server(2);
        s.register_client_group(cs(), n(0), true);
        let mut count = 0;
        let cmds = {
            let mut exec = counting_exec(2, &mut count);
            s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::OneWay)), &mut exec)
        };
        assert_eq!(count, 1, "one-way still executes");
        assert!(cmds.is_empty());
    }

    #[test]
    fn async_forwarding_answers_immediately_and_forwards_one_way() {
        let mut s = ServerCore::new(
            n(1),
            gs(),
            Replication::Passive,
            OpenOptimisation::AsyncForwarding,
        );
        s.set_server_view(vec![n(1), n(2), n(3)]);
        s.register_client_group(cs(), n(0), false);
        let mut count = 0;
        let cmds = {
            let mut exec = counting_exec(1, &mut count);
            s.on_delivered(&cs(), n(0), &enc(&request(1, ReplyMode::First)), &mut exec)
        };
        assert_eq!(count, 1, "primary executes at request time");
        assert_eq!(cmds.len(), 2);
        let InvCommand::Multicast {
            group: g0,
            payload: p0,
        } = &cmds[0]
        else {
            panic!()
        };
        assert_eq!(g0, &cs());
        assert!(matches!(
            InvMessage::from_cdr(p0).unwrap(),
            InvMessage::RelayedReply { .. }
        ));
        let InvCommand::Multicast {
            group: g1,
            payload: p1,
        } = &cmds[1]
        else {
            panic!()
        };
        assert_eq!(g1, &gs());
        assert!(matches!(
            InvMessage::from_cdr(p1).unwrap(),
            InvMessage::Forwarded { no_reply: true, .. }
        ));
    }

    #[test]
    fn passive_backups_log_and_replay_on_promotion() {
        let mut s = ServerCore::new(
            n(2),
            gs(),
            Replication::Passive,
            OpenOptimisation::AsyncForwarding,
        );
        s.set_server_view(vec![n(1), n(2), n(3)]);
        assert!(!s.is_primary());
        let fwd = |num: u64| InvMessage::Forwarded {
            call: CallId {
                client: n(0),
                number: num,
            },
            op: "set".to_owned(),
            args: Bytes::new(),
            mode: ReplyMode::First,
            manager: n(1),
            no_reply: true,
        };
        let mut count = 0;
        {
            let mut exec = counting_exec(2, &mut count);
            for i in 1..=3 {
                assert!(s
                    .on_delivered(&gs(), n(1), &enc(&fwd(i)), &mut exec)
                    .is_empty());
            }
        }
        assert_eq!(count, 0, "backups receive but do not act (§4.2)");
        assert_eq!(s.backlog_len(), 3);
        // The primary crashes; this backup is promoted.
        s.set_server_view(vec![n(2), n(3)]);
        assert!(s.is_primary());
        let promoted = {
            let mut exec = counting_exec(2, &mut count);
            s.promote(&mut exec)
        };
        assert_eq!(promoted, 3);
        assert_eq!(count, 3, "backlog replayed exactly once");
        assert_eq!(s.backlog_len(), 0);
    }

    #[test]
    fn passive_backlog_is_bounded_dropping_the_oldest() {
        let mut s = ServerCore::new(
            n(2),
            gs(),
            Replication::Passive,
            OpenOptimisation::AsyncForwarding,
        )
        .with_max_backlog(2);
        s.set_server_view(vec![n(1), n(2), n(3)]);
        let fwd = |num: u64| InvMessage::Forwarded {
            call: CallId {
                client: n(0),
                number: num,
            },
            op: "set".to_owned(),
            args: Bytes::new(),
            mode: ReplyMode::First,
            manager: n(1),
            no_reply: true,
        };
        let mut count = 0;
        {
            let mut exec = counting_exec(2, &mut count);
            for i in 1..=4 {
                s.on_delivered(&gs(), n(1), &enc(&fwd(i)), &mut exec);
            }
        }
        assert_eq!(s.backlog_len(), 2, "bounded at the configured cap");
        assert_eq!(s.backlog_shed_count(), 2, "oldest two dropped");
        s.set_server_view(vec![n(2), n(3)]);
        let promoted = {
            let mut exec = counting_exec(2, &mut count);
            s.promote(&mut exec)
        };
        assert_eq!(promoted, 2, "only the retained newest calls replay");
    }

    #[test]
    fn g2g_manager_filters_duplicates_and_forwards_once() {
        let gx = GroupId::new("gx");
        let gz = GroupId::new("gz");
        let mut s = active_server(1);
        s.register_monitor_group(gz.clone(), gx.clone());
        let req = |_from: u32| InvMessage::G2gRequest {
            origin: gx.clone(),
            number: 1,
            op: "tally".to_owned(),
            args: Bytes::new(),
            mode: ReplyMode::All,
        };
        let mut exec = |_: &str, _: &[u8]| Bytes::new();
        let cmds = s.on_delivered(&gz, n(5), &enc(&req(5)), &mut exec);
        assert_eq!(cmds.len(), 1, "first copy forwarded");
        let InvCommand::Multicast { group, .. } = &cmds[0] else {
            panic!()
        };
        assert_eq!(group, &gs());
        // Copies from the other gx members are filtered.
        assert!(s
            .on_delivered(&gz, n(6), &enc(&req(6)), &mut exec)
            .is_empty());
        assert!(s
            .on_delivered(&gz, n(7), &enc(&req(7)), &mut exec)
            .is_empty());
    }

    #[test]
    fn g2g_replies_fan_out_through_the_monitor_group() {
        let gx = GroupId::new("gx");
        let gz = GroupId::new("gz");
        let mut s = active_server(1);
        s.set_server_view(vec![n(1), n(2)]);
        s.register_monitor_group(gz.clone(), gx.clone());
        let mut exec = |_: &str, _: &[u8]| Bytes::new();
        let req = InvMessage::G2gRequest {
            origin: gx.clone(),
            number: 1,
            op: "tally".to_owned(),
            args: Bytes::new(),
            mode: ReplyMode::All,
        };
        let cmds = s.on_delivered(&gz, n(5), &enc(&req), &mut exec);
        let InvCommand::Multicast { payload, .. } = &cmds[0] else {
            panic!()
        };
        let InvMessage::Forwarded { call, .. } = InvMessage::from_cdr(payload).unwrap() else {
            panic!()
        };
        // Both servers reply.
        let mut out = Vec::new();
        for replier in [1u32, 2] {
            let reply = InvMessage::ServerReply {
                call,
                replier: n(replier),
                result: Bytes::from(format!("r{replier}")),
            };
            out = s.on_delivered(&gs(), n(replier), &enc(&reply), &mut exec);
        }
        assert_eq!(out.len(), 1);
        let InvCommand::Multicast { group, payload } = &out[0] else {
            panic!()
        };
        assert_eq!(group, &gz, "reply multicast in the monitor group");
        let InvMessage::G2gReply {
            origin,
            number,
            replies,
        } = InvMessage::from_cdr(payload).unwrap()
        else {
            panic!()
        };
        assert_eq!(origin, gx);
        assert_eq!(number, 1);
        assert_eq!(replies.len(), 2);
    }

    #[test]
    fn unrelated_groups_and_garbage_are_ignored() {
        let mut s = active_server(1);
        let mut exec = |_: &str, _: &[u8]| Bytes::new();
        assert!(s
            .on_delivered(
                &GroupId::new("other"),
                n(0),
                &enc(&request(1, ReplyMode::All)),
                &mut exec
            )
            .is_empty());
        assert!(s
            .on_delivered(&gs(), n(0), b"garbage", &mut exec)
            .is_empty());
    }
}
