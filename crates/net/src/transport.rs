//! The wire-transport abstraction used by the threaded runtime.
//!
//! The simulator delivers packets itself; real deployments instead plug a
//! [`WireTransport`] implementation into the threaded runtime. Incoming
//! packets are pushed to a crossbeam channel supplied at construction, and
//! outgoing packets go through [`WireTransport::send`].

use std::error::Error;
use std::fmt;

use bytes::Bytes;

use crate::site::NodeId;

/// Errors produced by real transports.
#[derive(Debug)]
pub enum TransportError {
    /// The destination node has not been registered with this transport.
    UnknownPeer(NodeId),
    /// The transport has been shut down.
    Closed,
    /// The destination's bounded inbox is full; the packet was shed.
    /// The protocol layers treat this like loss (NACK-driven recovery),
    /// and the shed is counted in the inbox's queue statistics.
    Overloaded(NodeId),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(n) => write!(f, "unknown peer {n}"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Overloaded(n) => write!(f, "inbox of {n} overloaded; packet shed"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// An outgoing packet path for one node.
///
/// Implementations must be cheaply cloneable handles (sharing state
/// internally) so the runtime can fan sends out from several threads.
pub trait WireTransport: Send + Sync + 'static {
    /// The node this transport belongs to.
    fn local(&self) -> NodeId;

    /// Sends a payload to `dst`. Delivery is best-effort and unordered
    /// across peers (in-order per peer for the built-in transports);
    /// reliability is the business of the protocol layers above.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownPeer`] for unregistered peers,
    /// [`TransportError::Closed`] after shutdown, and
    /// [`TransportError::Io`] on socket failures.
    fn send(&self, dst: NodeId, payload: Bytes) -> Result<(), TransportError>;
}
