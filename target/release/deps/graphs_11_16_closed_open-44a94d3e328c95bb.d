/root/repo/target/release/deps/graphs_11_16_closed_open-44a94d3e328c95bb.d: crates/bench/benches/graphs_11_16_closed_open.rs

/root/repo/target/release/deps/graphs_11_16_closed_open-44a94d3e328c95bb: crates/bench/benches/graphs_11_16_closed_open.rs

crates/bench/benches/graphs_11_16_closed_open.rs:
