/root/repo/target/release/deps/newtop_workloads-53f31358adff975d.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

/root/repo/target/release/deps/libnewtop_workloads-53f31358adff975d.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

/root/repo/target/release/deps/libnewtop_workloads-53f31358adff975d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/plain.rs:
crates/workloads/src/scenario.rs:
