/root/repo/target/debug/deps/churn-eced2c3b1304c440.d: tests/tests/churn.rs Cargo.toml

/root/repo/target/debug/deps/libchurn-eced2c3b1304c440.rmeta: tests/tests/churn.rs Cargo.toml

tests/tests/churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
