/root/repo/target/debug/deps/protocol-58bb143de34413de.d: crates/gcs/tests/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-58bb143de34413de.rmeta: crates/gcs/tests/protocol.rs Cargo.toml

crates/gcs/tests/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
