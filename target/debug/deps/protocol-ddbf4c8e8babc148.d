/root/repo/target/debug/deps/protocol-ddbf4c8e8babc148.d: crates/gcs/tests/protocol.rs

/root/repo/target/debug/deps/protocol-ddbf4c8e8babc148: crates/gcs/tests/protocol.rs

crates/gcs/tests/protocol.rs:
