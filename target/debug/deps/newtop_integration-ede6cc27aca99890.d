/root/repo/target/debug/deps/newtop_integration-ede6cc27aca99890.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_integration-ede6cc27aca99890.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
