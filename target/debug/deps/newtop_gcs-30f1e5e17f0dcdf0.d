/root/repo/target/debug/deps/newtop_gcs-30f1e5e17f0dcdf0.d: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

/root/repo/target/debug/deps/newtop_gcs-30f1e5e17f0dcdf0: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

crates/gcs/src/lib.rs:
crates/gcs/src/clock.rs:
crates/gcs/src/engine.rs:
crates/gcs/src/group.rs:
crates/gcs/src/member.rs:
crates/gcs/src/messages.rs:
crates/gcs/src/testkit.rs:
crates/gcs/src/view.rs:
