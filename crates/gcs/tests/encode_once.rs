//! Byte-identity of the encode-once fan-out path.
//!
//! The hot path CDR-encodes a [`GcsMessage`] exactly once and hands the
//! same refcounted GIOP frame to every recipient. This property pins
//! down the invariant that matters for correctness: the shared frame is
//! byte-for-byte what each recipient would have received had the sender
//! encoded per recipient, for arbitrary messages and group sizes.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use newtop_gcs::clock::DepsVector;
use newtop_gcs::group::{DeliveryOrder, GroupId};
use newtop_gcs::messages::{DataMsg, GcsMessage, NullMsg};
use newtop_gcs::view::ViewId;
use newtop_gcs::{GCS_OPERATION, NSO_OBJECT_KEY};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrEncode};
use newtop_orb::giop::GiopMessage;
use newtop_orb::ior::ObjectKey;
use newtop_orb::orb::OrbCore;

fn n(i: u32) -> NodeId {
    NodeId::from_index(i)
}

/// Builds one of the three message kinds the steady-state hot path
/// multicasts — data, heartbeat, or NACK — from raw generated inputs.
fn build_message(
    kind: u32,
    sender: u32,
    seq: u64,
    lamport: u64,
    causal: bool,
    payload: Vec<u8>,
    deps: Vec<(u32, u64)>,
) -> GcsMessage {
    match kind {
        0 => GcsMessage::Data(Arc::new(DataMsg {
            group: GroupId::new("prop"),
            view: ViewId(7),
            sender: n(sender),
            seq,
            lamport,
            order: if causal {
                DeliveryOrder::Causal
            } else {
                DeliveryOrder::Total
            },
            deps: DepsVector::from_pairs(deps.into_iter().map(|(q, p)| (n(q), p))),
            acks: vec![(n(sender), seq.saturating_sub(1))],
            payload: Bytes::from(payload),
        })),
        1 => GcsMessage::Null(NullMsg {
            group: GroupId::new("prop"),
            view: ViewId(7),
            sender: n(sender),
            lamport,
            last_seq: seq,
            acks: vec![],
        }),
        _ => GcsMessage::Nack {
            group: GroupId::new("prop"),
            view: ViewId(7),
            from: n(sender),
            sender: n(sender.wrapping_add(1) % 8),
            from_seq: seq,
            to_seq: seq + lamport % 50,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any message and group size, the frame every recipient gets from
    /// the encode-once fan-out is byte-identical to a per-recipient
    /// `GiopMessage::Request { .. }.to_frame()` encode — and all
    /// recipients share one allocation.
    #[test]
    fn prop_shared_frame_is_byte_identical_to_per_recipient_encode(
        kind in 0u32..3,
        sender in 0u32..8,
        seq in 1u64..1000,
        lamport in 1u64..1000,
        causal in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        deps in proptest::collection::vec((0u32..8, 0u64..100), 0..4),
        group_size in 1usize..12,
    ) {
        let msg = build_message(kind, sender, seq, lamport, causal, payload, deps);
        let mut orb = OrbCore::new(n(0));
        let mut out = Outbox::detached(0);
        let targets: Vec<NodeId> = (1..=group_size as u32).map(n).collect();
        let body = msg.to_cdr();
        let sent = orb.oneway_fanout(
            targets.clone(),
            &ObjectKey::new(NSO_OBJECT_KEY),
            GCS_OPERATION,
            &body,
            &mut out,
        );
        prop_assert_eq!(sent, group_size as u64);

        // What a naive per-recipient encoder would have produced. The
        // fan-out consumed request id 1 (fresh ORB).
        let reference = GiopMessage::Request {
            request_id: 1,
            object_key: ObjectKey::new(NSO_OBJECT_KEY),
            operation: GCS_OPERATION.to_owned(),
            response_expected: false,
            body: body.clone(),
        }
        .to_frame();

        let parts = out.into_parts();
        prop_assert_eq!(parts.sends.len(), group_size);
        let first_ptr = parts.sends[0].1.as_ptr();
        for (i, (dst, frame)) in parts.sends.iter().enumerate() {
            prop_assert_eq!(*dst, targets[i]);
            prop_assert_eq!(frame, &reference, "shared frame differs from per-recipient encode");
            prop_assert_eq!(frame.as_ptr(), first_ptr, "recipients must share one allocation");
        }

        // Round-trip: the recipient decodes the identical message.
        let GiopMessage::Request { body: got, .. } = GiopMessage::from_frame(&parts.sends[0].1)
            .expect("decodes")
        else {
            panic!("not a request");
        };
        let back = GcsMessage::from_cdr(&got).expect("body decodes");
        prop_assert_eq!(back, msg);
    }
}
