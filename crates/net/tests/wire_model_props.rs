//! Property tests for the wire-model extensions (PR 8): packet
//! reordering windows and per-link bandwidth caps.
//!
//! The model itself must be *lossless*: whatever reordering window and
//! bandwidth cap are in force, every packet handed to the network is
//! delivered exactly once (absent drop/duplication injection), and the
//! simulation quiesces once the load stops — a capped link drains, it
//! never wedges.

use std::time::Duration;

use bytes::Bytes;
use newtop_net::latency::{BandwidthMatrix, LatencyMatrix, LatencySpec};
use newtop_net::sim::{NodeEvent, Outbox, ServiceProfile, Sim, SimConfig, SimNode};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use proptest::prelude::*;

/// Sends `count` uniquely-numbered frames to every peer on a fixed tick.
struct Flooder {
    peers: Vec<NodeId>,
    sent: u32,
    count: u32,
    gap: Duration,
    payload_len: usize,
}

impl SimNode for Flooder {
    fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
        match ev {
            NodeEvent::Start | NodeEvent::Timer(..) => {
                if self.sent < self.count {
                    let mut payload = vec![0u8; self.payload_len.max(4)];
                    payload[..4].copy_from_slice(&self.sent.to_le_bytes());
                    for &p in &self.peers {
                        out.send(p, Bytes::from(payload.clone()));
                    }
                    self.sent += 1;
                    out.set_timer(self.gap, 0);
                }
            }
            NodeEvent::Packet(_) => {}
        }
    }
}

/// Records every frame number it receives, per sender.
struct Sink {
    seen: Vec<(NodeId, u32)>,
    last_at: SimTime,
}

impl SimNode for Sink {
    fn on_event(&mut self, now: SimTime, ev: NodeEvent, _out: &mut Outbox) {
        if let NodeEvent::Packet(p) = ev {
            let mut num = [0u8; 4];
            num.copy_from_slice(&p.payload[..4]);
            self.seen.push((p.src, u32::from_le_bytes(num)));
            self.last_at = now;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any reordering window and bandwidth cap, the model neither
    /// loses nor duplicates a single frame, and the run quiesces.
    #[test]
    fn reorder_and_bandwidth_never_lose_or_duplicate(
        seed in 0u64..1_000_000,
        reorder_ms in 0u64..50,
        cap_kib in proptest::option::of(1u64..512),
        payload_len in 4usize..2048,
        senders in 1usize..4,
        count in 1u32..40,
    ) {
        let mut bandwidth = BandwidthMatrix::unlimited();
        if let Some(kib) = cap_kib {
            bandwidth.set_local(kib * 1024);
        }
        let cfg = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::new(Duration::from_micros(180), Duration::from_micros(60)),
                LatencySpec::new(Duration::from_micros(180), Duration::from_micros(60)),
            ),
            default_service: ServiceProfile::free(),
            reorder_window: Duration::from_millis(reorder_ms),
            bandwidth,
            ..SimConfig::lan(seed)
        };
        let mut sim = Sim::new(cfg);
        let sink = sim.add_node(Site::Lan, Box::new(Sink { seen: Vec::new(), last_at: SimTime::ZERO }));
        let mut sources = Vec::new();
        for _ in 0..senders {
            sources.push(sim.add_node(Site::Lan, Box::new(Flooder {
                peers: vec![sink],
                sent: 0,
                count,
                gap: Duration::from_micros(500),
                payload_len,
            })));
        }
        // The load is finite, so the queue must drain on its own: the
        // event count is bounded and `run_until_idle` terminates.
        sim.run_until_idle();

        let sunk = sim.node_ref::<Sink>(sink).unwrap();
        // Exactly-once delivery per (sender, frame number).
        let mut seen = sunk.seen.clone();
        seen.sort_unstable();
        let mut expected: Vec<(NodeId, u32)> = Vec::new();
        for &src in &sources {
            for n in 0..count {
                expected.push((src, n));
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(&seen, &expected, "seed {}", sim.seed());

        // Quiescence: the last delivery lands within the worst-case
        // budget — send span + max latency + reorder window + the time
        // the capped link needs to drain everything queued on it.
        let send_span = Duration::from_micros(500) * count;
        let worst_latency = Duration::from_micros(240) + Duration::from_millis(reorder_ms);
        let drain = match cap_kib {
            Some(kib) => {
                let total = payload_len.max(4) as u64 * u64::from(count) * senders as u64;
                Duration::from_nanos(
                    (u128::from(total) * 1_000_000_000 / u128::from(kib * 1024)) as u64
                ) + Duration::from_millis(1)
            }
            None => Duration::ZERO,
        };
        let budget = SimTime::ZERO + send_span + worst_latency + drain;
        prop_assert!(
            sunk.last_at <= budget,
            "last delivery at {} exceeds budget {} (seed {})",
            sunk.last_at, budget, sim.seed()
        );
    }

    /// A bandwidth cap is a FIFO queue, not a filter: frame arrival
    /// order from one sender over one capped link is preserved even
    /// though each frame is delayed.
    #[test]
    fn bandwidth_cap_preserves_per_link_fifo_order(
        seed in 0u64..1_000_000,
        cap_kib in 1u64..256,
        count in 2u32..50,
    ) {
        let mut bandwidth = BandwidthMatrix::unlimited();
        bandwidth.set_local(cap_kib * 1024);
        let cfg = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::constant(Duration::from_micros(100)),
                LatencySpec::constant(Duration::from_micros(100)),
            ),
            default_service: ServiceProfile::free(),
            bandwidth,
            ..SimConfig::lan(seed)
        };
        let mut sim = Sim::new(cfg);
        let sink = sim.add_node(Site::Lan, Box::new(Sink { seen: Vec::new(), last_at: SimTime::ZERO }));
        sim.add_node(Site::Lan, Box::new(Flooder {
            peers: vec![sink],
            sent: 0,
            count,
            gap: Duration::from_micros(50),
            payload_len: 512,
        }));
        sim.run_until_idle();
        let order: Vec<u32> = sim
            .node_ref::<Sink>(sink)
            .unwrap()
            .seen
            .iter()
            .map(|&(_, n)| n)
            .collect();
        let sorted: Vec<u32> = (0..count).collect();
        prop_assert_eq!(order, sorted, "seed {}", sim.seed());
    }
}
