/root/repo/target/debug/deps/newtop_net-72ce43732505516a.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/newtop_net-72ce43732505516a: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/latency.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/site.rs:
crates/net/src/stats.rs:
crates/net/src/tcp.rs:
crates/net/src/time.rs:
crates/net/src/trace.rs:
crates/net/src/transport.rs:
