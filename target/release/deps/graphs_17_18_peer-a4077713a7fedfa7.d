/root/repo/target/release/deps/graphs_17_18_peer-a4077713a7fedfa7.d: crates/bench/benches/graphs_17_18_peer.rs

/root/repo/target/release/deps/graphs_17_18_peer-a4077713a7fedfa7: crates/bench/benches/graphs_17_18_peer.rs

crates/bench/benches/graphs_17_18_peer.rs:
