/root/repo/target/debug/deps/newtop_bench-8370fcd240a28610.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnewtop_bench-8370fcd240a28610.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnewtop_bench-8370fcd240a28610.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
