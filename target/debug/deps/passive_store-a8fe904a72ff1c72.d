/root/repo/target/debug/deps/passive_store-a8fe904a72ff1c72.d: examples/src/bin/passive_store.rs Cargo.toml

/root/repo/target/debug/deps/libpassive_store-a8fe904a72ff1c72.rmeta: examples/src/bin/passive_store.rs Cargo.toml

examples/src/bin/passive_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
