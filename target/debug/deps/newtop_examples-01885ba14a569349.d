/root/repo/target/debug/deps/newtop_examples-01885ba14a569349.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_examples-01885ba14a569349.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
