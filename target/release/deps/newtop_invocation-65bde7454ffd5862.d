/root/repo/target/release/deps/newtop_invocation-65bde7454ffd5862.d: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

/root/repo/target/release/deps/libnewtop_invocation-65bde7454ffd5862.rlib: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

/root/repo/target/release/deps/libnewtop_invocation-65bde7454ffd5862.rmeta: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

crates/invocation/src/lib.rs:
crates/invocation/src/api.rs:
crates/invocation/src/client.rs:
crates/invocation/src/g2g.rs:
crates/invocation/src/server.rs:
