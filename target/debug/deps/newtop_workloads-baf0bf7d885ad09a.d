/root/repo/target/debug/deps/newtop_workloads-baf0bf7d885ad09a.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

/root/repo/target/debug/deps/newtop_workloads-baf0bf7d885ad09a: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/plain.rs:
crates/workloads/src/scenario.rs:
