/root/repo/target/release/deps/newtop_bench-4a39a2ad8677536e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnewtop_bench-4a39a2ad8677536e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnewtop_bench-4a39a2ad8677536e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
