//! Fan-out encode throughput: the encode-once multicast path against the
//! per-recipient baseline it replaced.
//!
//! `encode_once/G` drives the real hot path — one CDR body encode into
//! the ORB's scratch encoder, one GIOP frame, `G` refcount clones —
//! while `per_recipient/G` re-encodes body and frame for every
//! recipient, which is what the code did before this optimisation.
//! Throughput is reported in recipients served, so the two series are
//! directly comparable at each group size.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use newtop_gcs::clock::DepsVector;
use newtop_gcs::group::{DeliveryOrder, GroupId};
use newtop_gcs::messages::{DataMsg, GcsMessage};
use newtop_gcs::view::ViewId;
use newtop_gcs::{GCS_OPERATION, NSO_OBJECT_KEY};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_orb::cdr::CdrEncode;
use newtop_orb::giop::GiopMessage;
use newtop_orb::ior::ObjectKey;
use newtop_orb::orb::OrbCore;

fn n(i: u32) -> NodeId {
    NodeId::from_index(i)
}

fn wire_msg(payload_len: usize) -> GcsMessage {
    GcsMessage::Data(
        DataMsg {
            group: GroupId::new("bench"),
            view: ViewId(1),
            sender: n(0),
            seq: 9,
            lamport: 100,
            order: DeliveryOrder::Total,
            deps: DepsVector::from_pairs([(n(1), 8), (n(2), 8)]),
            acks: vec![(n(1), 8), (n(2), 8)],
            payload: Bytes::from(vec![0x5A; payload_len]),
        }
        .into(),
    )
}

fn bench_fanout_encode(c: &mut Criterion) {
    let msg = wire_msg(256);
    for group_size in [2u32, 4, 8, 16] {
        let targets: Vec<NodeId> = (1..=group_size).map(n).collect();
        let mut g = c.benchmark_group("fanout_encode");
        g.throughput(Throughput::Elements(u64::from(group_size)));

        // The hot path: one body encode, one frame, G cheap clones.
        let mut orb = OrbCore::new(n(0));
        g.bench_function(&format!("encode_once/{group_size}"), |b| {
            b.iter(|| {
                let mut out = Outbox::detached(0);
                let enc = orb.scratch_encoder();
                enc.clear();
                msg.encode(enc);
                let body = enc.take_frame();
                orb.oneway_fanout(
                    targets.iter().copied(),
                    &ObjectKey::new(NSO_OBJECT_KEY),
                    GCS_OPERATION,
                    &body,
                    &mut out,
                );
                out.into_parts().sends.len()
            });
        });

        // The replaced baseline: every recipient gets its own body and
        // frame encode.
        g.bench_function(&format!("per_recipient/{group_size}"), |b| {
            b.iter(|| {
                let mut out = Outbox::detached(0);
                for &t in &targets {
                    let frame = GiopMessage::Request {
                        request_id: 1,
                        object_key: ObjectKey::new(NSO_OBJECT_KEY),
                        operation: GCS_OPERATION.to_owned(),
                        response_expected: false,
                        body: msg.to_cdr(),
                    }
                    .to_frame();
                    out.send(t, frame);
                }
                out.into_parts().sends.len()
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_fanout_encode);
criterion_main!(benches);
