/root/repo/target/debug/deps/conference-116680cdceda8804.d: examples/src/bin/conference.rs Cargo.toml

/root/repo/target/debug/deps/libconference-116680cdceda8804.rmeta: examples/src/bin/conference.rs Cargo.toml

examples/src/bin/conference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
