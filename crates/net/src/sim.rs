//! Deterministic discrete-event network simulator.
//!
//! The simulator executes a set of [`SimNode`] state machines connected by a
//! latency-modelled network. It reproduces the two phenomena the paper's
//! evaluation hinges on:
//!
//! 1. **network latency** — every packet between two nodes takes a one-way
//!    latency drawn from the configured [`LatencyMatrix`];
//! 2. **node saturation** — each node processes events *serially*, and every
//!    event consumes CPU time given by a [`ServiceProfile`]. A node whose
//!    arrival rate exceeds its service rate builds a queue, which is exactly
//!    how the paper's LAN servers saturate with a single client and how the
//!    asymmetric sequencer becomes a bottleneck in peer groups.
//!
//! Fault injection (crashes, partitions, message loss/duplication) is built
//! in, because the GCS membership/virtual-synchrony machinery is exercised
//! by killing nodes mid-protocol.
//!
//! Determinism: all randomness is drawn from one seeded RNG, and the event
//! queue breaks timestamp ties by insertion sequence number.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::{BandwidthMatrix, LatencyMatrix};
use crate::site::{NodeId, Site};
use crate::time::SimTime;

/// A packet in flight between two nodes.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Opaque payload (marshalled by the layers above).
    pub payload: Bytes,
}

/// Identifies a pending timer set through [`Outbox::set_timer`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

/// An event delivered to a [`SimNode`].
#[derive(Debug)]
pub enum NodeEvent {
    /// The node has been added to a running simulation (delivered once,
    /// before any other event).
    Start,
    /// A packet arrived.
    Packet(Packet),
    /// A timer set earlier fired. The `u64` is the tag passed to
    /// [`Outbox::set_timer`].
    Timer(TimerId, u64),
}

/// Collects the actions a node wants performed: packet sends, timer sets
/// and timer cancellations. Actions take effect when the node's event
/// handler returns (at the node's CPU-completion time).
#[derive(Debug)]
pub struct Outbox {
    sends: Vec<(NodeId, Bytes, u64)>,
    timer_sets: Vec<(TimerId, Duration, u64)>,
    timer_cancels: Vec<TimerId>,
    next_timer: u64,
    current_chain: u64,
    chain_open: bool,
}

/// The accumulated actions of a detached [`Outbox`], consumed by runtimes
/// other than the simulator (see [`Outbox::into_parts`]).
#[derive(Debug)]
pub struct OutboxParts {
    /// Queued `(destination, payload)` sends (fan-out chains flattened;
    /// real transports send immediately).
    pub sends: Vec<(NodeId, Bytes)>,
    /// Queued timer registrations: `(id, delay, tag)`.
    pub timer_sets: Vec<(TimerId, Duration, u64)>,
    /// Queued timer cancellations.
    pub timer_cancels: Vec<TimerId>,
    /// The timer-id counter to seed the next outbox with.
    pub next_timer: u64,
}

impl Outbox {
    fn new(next_timer: u64) -> Self {
        Outbox {
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
            next_timer,
            current_chain: 0,
            chain_open: false,
        }
    }

    /// Queues a packet to `dst`. The source is filled in by the runtime.
    ///
    /// Outside a [`Self::begin_fanout`]/[`Self::end_fanout`] bracket each
    /// send is an independent invocation; inside one, successive sends
    /// form a single synchronous fan-out whose invocations the simulator
    /// chains in turn (the paper's per-member multicast loop).
    pub fn send(&mut self, dst: NodeId, payload: Bytes) {
        if !self.chain_open {
            self.current_chain += 1;
        }
        self.sends.push((dst, payload, self.current_chain));
    }

    /// Starts a multicast fan-out: until [`Self::end_fanout`], queued
    /// sends belong to one sequential-synchronous invocation chain
    /// (one multicast thread in the paper's implementation).
    pub fn begin_fanout(&mut self) {
        self.current_chain += 1;
        self.chain_open = true;
    }

    /// Ends the current fan-out.
    pub fn end_fanout(&mut self) {
        self.chain_open = false;
    }

    /// Sets a timer to fire after `delay`; the `tag` is handed back in the
    /// resulting [`NodeEvent::Timer`].
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.timer_sets.push((id, delay, tag));
        id
    }

    /// Cancels a previously set timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timer_cancels.push(id);
    }

    /// True if no actions have been queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timer_sets.is_empty() && self.timer_cancels.is_empty()
    }

    /// Creates an outbox not owned by a simulator, for driving state
    /// machines from other runtimes (threads) or from tests. Seed
    /// `next_timer` with the value returned by the previous outbox's
    /// [`Outbox::into_parts`] so timer ids stay unique per node.
    #[must_use]
    pub fn detached(next_timer: u64) -> Self {
        Outbox::new(next_timer)
    }

    /// Consumes the outbox, exposing the accumulated actions.
    #[must_use]
    pub fn into_parts(self) -> OutboxParts {
        OutboxParts {
            sends: self.sends.into_iter().map(|(d, p, _)| (d, p)).collect(),
            timer_sets: self.timer_sets,
            timer_cancels: self.timer_cancels,
            next_timer: self.next_timer,
        }
    }
}

/// A protocol state machine attached to a simulated node.
///
/// Implementations must be deterministic functions of the events they are
/// given — all randomness and time must come from the runtime.
pub trait SimNode: Any + Send {
    /// Handles one event, queueing any resulting actions into `out`.
    fn on_event(&mut self, now: SimTime, ev: NodeEvent, out: &mut Outbox);

    /// Called when the node is cold-restarted after a crash (see
    /// [`Sim::schedule_restart`]), before the fresh [`NodeEvent::Start`]
    /// is delivered. Implementations discard volatile state here; state
    /// that should survive the crash must live outside the node (e.g. a
    /// shared durable store). No outbox is available — recovery actions
    /// belong in the `Start` handler that follows.
    fn on_restart(&mut self, _now: SimTime) {}
}

impl dyn SimNode {
    /// Downcasts a node trait object to its concrete type.
    #[must_use]
    pub fn downcast_ref<T: SimNode>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref()
    }

    /// Mutable variant of [`dyn SimNode::downcast_ref`](Self::downcast_ref).
    #[must_use]
    pub fn downcast_mut<T: SimNode>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut()
    }
}

/// Per-event CPU costs for a node.
///
/// The defaults model the paper's Pentium/omniORB2 stack: a few hundred
/// microseconds of marshalling/dispatch per message. These are what make a
/// LAN server saturate at roughly a thousand requests per second, as in the
/// paper's graphs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Fixed CPU cost of handling one incoming packet.
    pub per_message: Duration,
    /// Additional CPU cost per KiB of payload.
    pub per_kib: Duration,
    /// CPU cost of handling a timer event.
    pub per_timer: Duration,
    /// CPU cost of *sending* one packet. The paper's ORBs only provide
    /// one-to-one invocation, so a multicast is a series of per-member
    /// invocations — each marshalled and dispatched at the sender. This
    /// is what makes large fan-outs (a closed-group client's request, a
    /// member's null messages across many groups, the sequencer's
    /// ordering records) cost real time.
    pub per_send: Duration,
}

impl ServiceProfile {
    /// A profile with zero cost everywhere (pure-latency simulations).
    #[must_use]
    pub const fn free() -> Self {
        ServiceProfile {
            per_message: Duration::ZERO,
            per_kib: Duration::ZERO,
            per_timer: Duration::ZERO,
            per_send: Duration::ZERO,
        }
    }
}

impl Default for ServiceProfile {
    fn default() -> Self {
        ServiceProfile {
            per_message: Duration::from_micros(300),
            per_kib: Duration::from_micros(40),
            per_timer: Duration::from_micros(20),
            per_send: Duration::from_micros(250),
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// One-way latency model.
    pub latency: LatencyMatrix,
    /// Default CPU profile for nodes added without an explicit one.
    pub default_service: ServiceProfile,
    /// Probability that any packet is silently dropped.
    pub drop_probability: f64,
    /// Probability that any packet is delivered twice.
    pub duplicate_probability: f64,
    /// Packet reordering window: every non-loopback packet gets extra
    /// one-way latency drawn uniformly from `[0, window]`, permuting
    /// arrival order without losing or duplicating anything.
    /// `Duration::ZERO` (the default) disables reordering and leaves the
    /// RNG stream untouched, so existing seeds stay bit-identical.
    pub reorder_window: Duration,
    /// Per-link bandwidth caps. A capped frame occupies its directed
    /// src→dst link for `payload_len / bytes_per_sec`, FIFO behind frames
    /// already queued on that link, before its propagation latency starts.
    /// The default is unlimited everywhere (no serialization delay).
    pub bandwidth: BandwidthMatrix,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed,
            latency: LatencyMatrix::lan(),
            default_service: ServiceProfile::default(),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_window: Duration::ZERO,
            bandwidth: BandwidthMatrix::unlimited(),
        }
    }
}

impl SimConfig {
    /// A LAN configuration with the given seed.
    #[must_use]
    pub fn lan(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// The Internet (Newcastle/London/Pisa) configuration with the given
    /// seed.
    #[must_use]
    pub fn internet(seed: u64) -> Self {
        SimConfig {
            seed,
            latency: LatencyMatrix::internet(),
            ..SimConfig::default()
        }
    }
}

#[derive(Debug)]
enum QueuedKind {
    /// An event has arrived at the node and is waiting for CPU.
    Arrive(NodeEvent),
    /// The node's CPU finishes processing this event now; run the handler.
    Handle(NodeEvent),
    Control(Control),
}

#[derive(Debug)]
enum Control {
    Crash(NodeId),
    /// Cold-restart a crashed node: volatile state is discarded
    /// ([`SimNode::on_restart`]), a fresh `Start` is delivered, and
    /// pre-crash timers and CPU work are invalidated.
    Restart(NodeId),
    /// Nodes in different cells cannot exchange packets. A node absent from
    /// every cell is unreachable by everyone.
    Partition(Vec<Vec<NodeId>>),
    Heal,
    /// Replace the network-wide drop probability (drop bursts).
    SetDrop(f64),
    /// Replace the network-wide duplication probability.
    SetDuplicate(f64),
    /// Add a fixed delay to every non-loopback packet (delay spikes);
    /// `Duration::ZERO` ends the spike.
    SetExtraDelay(Duration),
    /// Replace the packet reordering window (`Duration::ZERO` disables).
    SetReorder(Duration),
    /// Override every link's bandwidth cap (`None` restores the
    /// configured [`BandwidthMatrix`]).
    SetBandwidth(Option<u64>),
    /// Scale a node's CPU service costs (`None` targets every node).
    /// A factor above 1 models overload or a degraded machine;
    /// `1.0` restores nominal speed.
    SetServiceFactor(Option<NodeId>, f64),
}

/// Incarnation stamp meaning "deliver regardless of restarts".
const ANY_INCARNATION: u64 = u64::MAX;

struct QueuedEvent {
    at: SimTime,
    seq: u64,
    target: Option<NodeId>,
    kind: QueuedKind,
    /// Which incarnation of the target this event belongs to. Timers and
    /// queued CPU work die with the incarnation that created them (a
    /// restarted node must not receive a previous life's timers, whose
    /// tags a rebuilt state machine may have reused); network packets and
    /// harness injections carry [`ANY_INCARNATION`].
    incarnation: u64,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Slot {
    node: Box<dyn SimNode>,
    site: Site,
    service: ServiceProfile,
    /// Multiplier on every CPU cost (see `Control::SetServiceFactor`).
    service_factor: f64,
    busy_until: SimTime,
    alive: bool,
    started: bool,
    /// Bumped on every restart; see [`QueuedEvent::incarnation`].
    incarnation: u64,
}

/// Aggregate traffic counters for a run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the network (before loss).
    pub packets_sent: u64,
    /// Packets delivered to a live node.
    pub packets_delivered: u64,
    /// Packets dropped by loss injection, partitions or dead nodes.
    pub packets_dropped: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
}

/// The discrete-event simulator. See the [module docs](self) for the model.
pub struct Sim {
    cfg: SimConfig,
    rng: StdRng,
    now: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    nodes: Vec<Slot>,
    cancelled_timers: HashSet<TimerId>,
    next_timer: u64,
    next_seq: u64,
    partition: Option<Vec<Vec<NodeId>>>,
    extra_delay: Duration,
    /// Network-wide bandwidth override (see `Control::SetBandwidth`).
    bandwidth_override: Option<u64>,
    /// When each directed link's last capped frame finishes serializing
    /// (accessed per-link via `entry`, never iterated).
    link_busy: std::collections::HashMap<(NodeId, NodeId), SimTime>,
    stats: NetStats,
    events_processed: u64,
}

impl Sim {
    /// Creates an empty simulation.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Sim {
            cfg,
            rng,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            cancelled_timers: HashSet::new(),
            next_timer: 0,
            next_seq: 0,
            partition: None,
            extra_delay: Duration::ZERO,
            bandwidth_override: None,
            link_busy: std::collections::HashMap::new(),
            stats: NetStats::default(),
            events_processed: 0,
        }
    }

    /// Adds a node with the default service profile, returning its id.
    /// The node receives [`NodeEvent::Start`] at the current virtual time.
    pub fn add_node(&mut self, site: Site, node: Box<dyn SimNode>) -> NodeId {
        let service = self.cfg.default_service;
        self.add_node_with_service(site, service, node)
    }

    /// Adds a node with an explicit CPU profile.
    pub fn add_node_with_service(
        &mut self,
        site: Site,
        service: ServiceProfile,
        node: Box<dyn SimNode>,
    ) -> NodeId {
        let id = NodeId::from_index(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Slot {
            node,
            site,
            service,
            service_factor: 1.0,
            busy_until: SimTime::ZERO,
            alive: true,
            started: false,
            incarnation: 0,
        });
        self.push(self.now, Some(id), QueuedKind::Arrive(NodeEvent::Start));
        id
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this simulation was created with. Loss and
    /// duplication probabilities reflect any scheduled overrides that
    /// have already taken effect.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The seed this simulation was created with — print it in every
    /// assertion message so a red run reproduces byte-identically.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Traffic counters so far.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of events handled so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Borrow a node's concrete state (for inspecting results after a run).
    ///
    /// Returns `None` if the node's type is not `T`.
    #[must_use]
    pub fn node_ref<T: SimNode>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.index() as usize)
            .and_then(|s| s.node.downcast_ref())
    }

    /// Mutable variant of [`Self::node_ref`].
    #[must_use]
    pub fn node_mut<T: SimNode>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.index() as usize)
            .and_then(|s| s.node.downcast_mut())
    }

    /// Whether a node is still running (has not been crashed).
    #[must_use]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index() as usize).is_some_and(|s| s.alive)
    }

    /// Schedules a crash: the node stops processing and all packets to or
    /// from it are dropped (crash-stop, the paper's failure model).
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, None, QueuedKind::Control(Control::Crash(node)));
    }

    /// Schedules a cold restart of a crashed node. Volatile state is
    /// discarded through [`SimNode::on_restart`], timers and CPU work
    /// from the previous incarnation are invalidated, and a fresh
    /// [`NodeEvent::Start`] is delivered at `at`. A restart scheduled for
    /// a node that is still alive is a no-op.
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeId) {
        self.push(at, None, QueuedKind::Control(Control::Restart(node)));
    }

    /// Schedules a network partition. Nodes in different cells cannot
    /// exchange packets until [`Self::schedule_heal`] takes effect.
    pub fn schedule_partition(&mut self, at: SimTime, cells: Vec<Vec<NodeId>>) {
        self.push(at, None, QueuedKind::Control(Control::Partition(cells)));
    }

    /// Schedules the removal of any active partition.
    pub fn schedule_heal(&mut self, at: SimTime) {
        self.push(at, None, QueuedKind::Control(Control::Heal));
    }

    /// Schedules a change of the network-wide drop probability. Schedule a
    /// raised value followed by a restore to model a loss burst.
    pub fn schedule_set_drop(&mut self, at: SimTime, probability: f64) {
        self.push(at, None, QueuedKind::Control(Control::SetDrop(probability)));
    }

    /// Schedules a change of the network-wide duplication probability
    /// (a duplication window when paired with a later restore).
    pub fn schedule_set_duplicate(&mut self, at: SimTime, probability: f64) {
        self.push(
            at,
            None,
            QueuedKind::Control(Control::SetDuplicate(probability)),
        );
    }

    /// Schedules a delay spike: from `at` on, every non-loopback packet
    /// takes `extra` additional one-way latency. Schedule a second call
    /// with `Duration::ZERO` to end the spike.
    pub fn schedule_set_extra_delay(&mut self, at: SimTime, extra: Duration) {
        self.push(at, None, QueuedKind::Control(Control::SetExtraDelay(extra)));
    }

    /// Schedules a change of the packet reordering window: from `at` on,
    /// every non-loopback packet gets extra one-way latency drawn
    /// uniformly from `[0, window]`, which permutes arrival order without
    /// losing or duplicating anything. Schedule a second call with
    /// `Duration::ZERO` to end the scramble.
    pub fn schedule_set_reorder(&mut self, at: SimTime, window: Duration) {
        self.push(at, None, QueuedKind::Control(Control::SetReorder(window)));
    }

    /// Schedules a network-wide bandwidth override: from `at` on,
    /// `Some(bytes_per_sec)` caps every non-loopback link (frames
    /// serialize FIFO per directed link before their latency starts);
    /// `None` restores the configured [`BandwidthMatrix`].
    pub fn schedule_set_bandwidth(&mut self, at: SimTime, bytes_per_sec: Option<u64>) {
        self.push(
            at,
            None,
            QueuedKind::Control(Control::SetBandwidth(bytes_per_sec)),
        );
    }

    /// Schedules a CPU service-cost scaling: from `at` on, every cost in
    /// the targeted node's [`ServiceProfile`] is multiplied by `factor`
    /// (`None` targets every node). Pair a factor above 1 with a later
    /// `1.0` restore to model an overload or slow-member window.
    pub fn schedule_set_service_factor(&mut self, at: SimTime, node: Option<NodeId>, factor: f64) {
        self.push(
            at,
            None,
            QueuedKind::Control(Control::SetServiceFactor(node, factor)),
        );
    }

    /// Injects an event directly into a node, as if it arrived over the
    /// network at time `at` (which must not be in the past). This is how
    /// test harnesses and workload drivers prod their actors.
    pub fn schedule_packet(&mut self, at: SimTime, pkt: Packet) {
        assert!(at >= self.now, "cannot schedule into the past");
        let dst = pkt.dst;
        self.push(at, Some(dst), QueuedKind::Arrive(NodeEvent::Packet(pkt)));
    }

    /// Runs until the queue is exhausted. Panics after `u64::MAX` events —
    /// use [`Self::run_until`] for workloads with periodic timers.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs until virtual time reaches `deadline` (or the queue empties).
    /// Events at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        match ev.kind {
            QueuedKind::Control(c) => self.apply_control(c),
            QueuedKind::Arrive(event) => {
                let Some(target) = ev.target else {
                    return true;
                };
                if self.incarnation_live(target, ev.incarnation) {
                    self.on_arrival(target, event);
                }
            }
            QueuedKind::Handle(event) => {
                let Some(target) = ev.target else {
                    return true;
                };
                if self.incarnation_live(target, ev.incarnation) {
                    self.dispatch(target, event);
                }
            }
        }
        true
    }

    /// Whether an event stamped with `incarnation` may still reach
    /// `target`: either it carries the wildcard stamp or the node has not
    /// been restarted since the stamp was taken.
    fn incarnation_live(&self, target: NodeId, incarnation: u64) -> bool {
        incarnation == ANY_INCARNATION
            || self
                .nodes
                .get(target.index() as usize)
                .is_some_and(|s| s.incarnation == incarnation)
    }

    fn apply_control(&mut self, c: Control) {
        match c {
            Control::Crash(id) => {
                if let Some(slot) = self.nodes.get_mut(id.index() as usize) {
                    slot.alive = false;
                }
            }
            Control::Restart(id) => {
                let now = self.now;
                if let Some(slot) = self.nodes.get_mut(id.index() as usize) {
                    if !slot.alive {
                        slot.alive = true;
                        slot.started = false;
                        slot.busy_until = now;
                        slot.incarnation += 1;
                        slot.node.on_restart(now);
                        self.push(now, Some(id), QueuedKind::Arrive(NodeEvent::Start));
                    }
                }
            }
            Control::Partition(cells) => self.partition = Some(cells),
            Control::Heal => self.partition = None,
            Control::SetDrop(p) => self.cfg.drop_probability = p,
            Control::SetDuplicate(p) => self.cfg.duplicate_probability = p,
            Control::SetExtraDelay(d) => self.extra_delay = d,
            Control::SetReorder(w) => self.cfg.reorder_window = w,
            Control::SetBandwidth(bps) => self.bandwidth_override = bps,
            Control::SetServiceFactor(target, factor) => {
                let factor = if factor.is_finite() && factor > 0.0 {
                    factor
                } else {
                    1.0
                };
                match target {
                    Some(id) => {
                        if let Some(slot) = self.nodes.get_mut(id.index() as usize) {
                            slot.service_factor = factor;
                        }
                    }
                    None => {
                        for slot in &mut self.nodes {
                            slot.service_factor = factor;
                        }
                    }
                }
            }
        }
    }

    /// An event has arrived at `target`; queue it behind the node's CPU.
    fn on_arrival(&mut self, target: NodeId, event: NodeEvent) {
        let Some(slot) = self.nodes.get_mut(target.index() as usize) else {
            return;
        };
        if !slot.alive {
            if matches!(event, NodeEvent::Packet(_)) {
                self.stats.packets_dropped += 1;
            }
            return;
        }
        // Fired timers that were cancelled while queued are discarded here,
        // before they consume CPU.
        if let NodeEvent::Timer(id, _) = &event {
            if self.cancelled_timers.remove(id) {
                return;
            }
        }
        let cost = match &event {
            NodeEvent::Packet(p) => {
                slot.service.per_message
                    + mul_duration(slot.service.per_kib, p.payload.len() as f64 / 1024.0)
            }
            NodeEvent::Timer(..) => slot.service.per_timer,
            NodeEvent::Start => Duration::ZERO,
        };
        let cost = mul_duration(cost, slot.service_factor);
        let begin = self.now.max(slot.busy_until);
        let completion = begin + cost;
        slot.busy_until = completion;
        if matches!(event, NodeEvent::Packet(_)) {
            self.stats.packets_delivered += 1;
        }
        let incarnation = slot.incarnation;
        self.push_stamped(
            completion,
            Some(target),
            QueuedKind::Handle(event),
            incarnation,
        );
    }

    /// The node's CPU has finished with this event; run the handler and
    /// apply its actions.
    fn dispatch(&mut self, target: NodeId, event: NodeEvent) {
        let idx = target.index() as usize;
        {
            let slot = &mut self.nodes[idx];
            if !slot.alive {
                return;
            }
            if let NodeEvent::Start = event {
                if slot.started {
                    return;
                }
                slot.started = true;
            }
        }
        let mut out = Outbox::new(self.next_timer);
        // Temporarily take the node out so the handler can't alias the sim.
        let mut node = std::mem::replace(&mut self.nodes[idx].node, Box::new(PlaceholderNode));
        node.on_event(self.now, event, &mut out);
        self.nodes[idx].node = node;
        self.next_timer = out.next_timer;
        self.apply_outbox(target, out);
    }

    fn apply_outbox(&mut self, src: NodeId, out: Outbox) {
        for id in out.timer_cancels {
            self.cancelled_timers.insert(id);
        }
        for (id, delay, tag) in out.timer_sets {
            // A set immediately followed by a cancel in the same outbox is
            // honoured as cancelled.
            if self.cancelled_timers.remove(&id) {
                continue;
            }
            let at = self.now + delay;
            let incarnation = self
                .nodes
                .get(src.index() as usize)
                .map_or(ANY_INCARNATION, |s| s.incarnation);
            self.push_stamped(
                at,
                Some(src),
                QueuedKind::Arrive(NodeEvent::Timer(id, tag)),
                incarnation,
            );
        }
        // Sends are per-member ORB invocations. Two costs, both from the
        // paper's architecture (§2.2): each invocation consumes sender
        // CPU (marshalling/dispatch — this serialises the node), and a
        // multi-member fan-out within one handler turn is a sequence of
        // *synchronous* invocations made "in turn to all the members":
        // invocation i+1 starts only after invocation i's round trip
        // completes. The fan-out runs on its own thread (the paper's
        // anti-blocking measure), so the accumulated round-trip time
        // delays only these packets, not the node's CPU.
        let per_send = self
            .nodes
            .get(src.index() as usize)
            .map_or(Duration::ZERO, |slot| {
                mul_duration(slot.service.per_send, slot.service_factor)
            });
        let src_site = self.site_of(src);
        let mut cpu_depart = self.now;
        let mut chains: std::collections::BTreeMap<u64, Duration> =
            std::collections::BTreeMap::new();
        for (dst, payload, chain_id) in out.sends {
            cpu_depart += per_send;
            let chain = chains.entry(chain_id).or_insert(Duration::ZERO);
            // Loopback delivery is in-process (the paper's m1/m6): it
            // neither waits for nor extends the invocation chain.
            let depart = if src == dst {
                cpu_depart
            } else {
                cpu_depart + *chain
            };
            if src != dst {
                // The synchronous invocation's round trip gates the next
                // member of this fan-out's chain.
                let one_way = self
                    .cfg
                    .latency
                    .sample(src_site, self.site_of(dst), &mut self.rng);
                *chain += one_way * 2;
            }
            self.transmit(src, dst, payload, depart);
        }
        if let Some(slot) = self.nodes.get_mut(src.index() as usize) {
            slot.busy_until = slot.busy_until.max(cpu_depart);
        }
    }

    fn transmit(&mut self, src: NodeId, dst: NodeId, payload: Bytes, depart: SimTime) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        if !self.can_communicate(src, dst) {
            self.stats.packets_dropped += 1;
            return;
        }
        // Loopback delivery is in-process (the paper's m1/m6 local
        // messages): it cannot be lost, duplicated, reordered or
        // serialized by the network.
        let loopback = src == dst;
        // Bandwidth: a capped frame occupies the directed src→dst link
        // for its serialization time, FIFO behind frames already queued
        // there, before its propagation latency starts. Duplicates share
        // one serialization (the copy is made inside the network).
        let mut depart = depart;
        if !loopback {
            let cap = self
                .bandwidth_override
                .or_else(|| self.cfg.bandwidth.cap(self.site_of(src), self.site_of(dst)));
            if let Some(bytes_per_sec) = cap {
                let ser = serialization_delay(payload.len(), bytes_per_sec);
                let link = self.link_busy.entry((src, dst)).or_insert(SimTime::ZERO);
                let done = (*link).max(depart) + ser;
                *link = done;
                depart = done;
            }
        }
        if !loopback
            && self.cfg.drop_probability > 0.0
            && self.rng.gen_bool(self.cfg.drop_probability)
        {
            self.stats.packets_dropped += 1;
            return;
        }
        let copies = if !loopback
            && self.cfg.duplicate_probability > 0.0
            && self.rng.gen_bool(self.cfg.duplicate_probability)
        {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let latency = if loopback {
                Duration::from_micros(1)
            } else {
                let (a, b) = (self.site_of(src), self.site_of(dst));
                let mut one_way = self.cfg.latency.sample(a, b, &mut self.rng) + self.extra_delay;
                if !self.cfg.reorder_window.is_zero() {
                    let bound = self.cfg.reorder_window.as_nanos() as u64;
                    one_way += Duration::from_nanos(self.rng.gen_range(0..=bound));
                }
                one_way
            };
            let at = depart + latency;
            let pkt = Packet {
                src,
                dst,
                payload: payload.clone(),
            };
            self.push(at, Some(dst), QueuedKind::Arrive(NodeEvent::Packet(pkt)));
        }
    }

    fn can_communicate(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_alive(a) || !self.is_alive(b) {
            return false;
        }
        if a == b {
            return true;
        }
        match &self.partition {
            None => true,
            Some(cells) => cells
                .iter()
                .any(|cell| cell.contains(&a) && cell.contains(&b)),
        }
    }

    fn site_of(&self, id: NodeId) -> Site {
        self.nodes
            .get(id.index() as usize)
            .map_or(Site::Lan, |s| s.site)
    }

    fn push(&mut self, at: SimTime, target: Option<NodeId>, kind: QueuedKind) {
        self.push_stamped(at, target, kind, ANY_INCARNATION);
    }

    fn push_stamped(
        &mut self,
        at: SimTime,
        target: Option<NodeId>,
        kind: QueuedKind,
        incarnation: u64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            at,
            seq,
            target,
            kind,
            incarnation,
        }));
    }
}

/// Stand-in used while a node's handler runs; never receives events.
struct PlaceholderNode;
impl SimNode for PlaceholderNode {
    fn on_event(&mut self, _: SimTime, _: NodeEvent, _: &mut Outbox) {
        unreachable!("placeholder node must never be dispatched");
    }
}

fn mul_duration(d: Duration, factor: f64) -> Duration {
    Duration::from_nanos((d.as_nanos() as f64 * factor) as u64)
}

/// Time a frame of `bytes` payload occupies a `bytes_per_sec` link.
fn serialization_delay(bytes: usize, bytes_per_sec: u64) -> Duration {
    if bytes_per_sec == 0 {
        return Duration::ZERO;
    }
    let nanos = (bytes as u128 * 1_000_000_000).div_ceil(u128::from(bytes_per_sec));
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencySpec;

    /// Echoes every packet back to its sender and counts what it saw.
    struct Echo {
        seen: u32,
    }
    impl SimNode for Echo {
        fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
            if let NodeEvent::Packet(p) = ev {
                self.seen += 1;
                out.send(p.src, p.payload);
            }
        }
    }

    /// Sends `n` packets to a peer at start, counts replies, records when
    /// the first and last replies arrived.
    struct Pinger {
        peer: NodeId,
        n: u32,
        replies: u32,
        first_at: SimTime,
        last_at: SimTime,
    }
    impl SimNode for Pinger {
        fn on_event(&mut self, now: SimTime, ev: NodeEvent, out: &mut Outbox) {
            match ev {
                NodeEvent::Start => {
                    for _ in 0..self.n {
                        out.send(self.peer, Bytes::from_static(b"hi"));
                    }
                }
                NodeEvent::Packet(_) => {
                    self.replies += 1;
                    if self.first_at == SimTime::ZERO {
                        self.first_at = now;
                    }
                    self.last_at = now;
                }
                NodeEvent::Timer(..) => {}
            }
        }
    }

    fn two_node_sim(cfg: SimConfig, n: u32) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(cfg);
        let echo = sim.add_node(Site::Lan, Box::new(Echo { seen: 0 }));
        let pinger = sim.add_node(
            Site::Lan,
            Box::new(Pinger {
                peer: echo,
                n,
                replies: 0,
                first_at: SimTime::ZERO,
                last_at: SimTime::ZERO,
            }),
        );
        (sim, echo, pinger)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, echo, pinger) = two_node_sim(SimConfig::default(), 3);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 3);
        assert_eq!(sim.node_ref::<Pinger>(pinger).unwrap().replies, 3);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let run = |seed, n| {
            let (mut sim, _, pinger) = two_node_sim(SimConfig::lan(seed), n);
            sim.run_until_idle();
            let p = sim.node_ref::<Pinger>(pinger).unwrap();
            (sim.now(), sim.stats(), p.first_at, p.last_at)
        };
        assert_eq!(run(42, 10), run(42, 10));
        // Different seeds draw different latency jitter, visible in a
        // single latency-bound round trip.
        assert_ne!(run(42, 1).2, run(43, 1).2);
    }

    #[test]
    fn cpu_queueing_serialises_a_node() {
        // With per-message cost C and N simultaneous arrivals, the node's
        // last completion must be at least N*C after the first arrival.
        let cfg = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::constant(Duration::from_micros(100)),
                LatencySpec::constant(Duration::from_micros(100)),
            ),
            default_service: ServiceProfile {
                per_message: Duration::from_millis(1),
                per_kib: Duration::ZERO,
                per_timer: Duration::ZERO,
                per_send: Duration::ZERO,
            },
            ..SimConfig::default()
        };
        let (mut sim, _, pinger) = two_node_sim(cfg, 5);
        sim.run_until_idle();
        let p = sim.node_ref::<Pinger>(pinger).unwrap();
        assert_eq!(p.replies, 5);
        // 5 pings queue at the echo node: its CPU serialises them (last
        // reply leaves at 5.1 ms), then the pinger spends 1 ms handling it:
        // last completion at 6.2 ms. Without CPU queueing it would be ~2.2 ms.
        assert!(
            p.last_at >= SimTime::from_micros(6_200),
            "last reply at {}",
            p.last_at
        );
    }

    #[test]
    fn service_factor_scales_cpu_costs_and_restores() {
        // Same CPU-queueing setup as above, but the echo node runs 4×
        // slower during the window: 5 pings serialise at 4 ms each.
        let cfg = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::constant(Duration::from_micros(100)),
                LatencySpec::constant(Duration::from_micros(100)),
            ),
            default_service: ServiceProfile {
                per_message: Duration::from_millis(1),
                per_kib: Duration::ZERO,
                per_timer: Duration::ZERO,
                per_send: Duration::ZERO,
            },
            ..SimConfig::default()
        };
        let (mut sim, echo, pinger) = two_node_sim(cfg.clone(), 5);
        sim.schedule_set_service_factor(SimTime::ZERO, Some(echo), 4.0);
        sim.run_until_idle();
        let slow = sim.node_ref::<Pinger>(pinger).unwrap();
        assert_eq!(slow.replies, 5);
        // 5 pings × 4 ms at the echo node plus the pinger's 1 ms handler.
        assert!(
            slow.last_at >= SimTime::from_micros(21_200),
            "last reply at {}",
            slow.last_at
        );

        // A restore to 1.0 before traffic leaves timings nominal.
        let (mut sim, echo, pinger) = two_node_sim(cfg, 5);
        sim.schedule_set_service_factor(SimTime::ZERO, Some(echo), 4.0);
        sim.schedule_set_service_factor(SimTime::ZERO, None, 1.0);
        sim.run_until_idle();
        let nominal = sim.node_ref::<Pinger>(pinger).unwrap();
        assert!(
            nominal.last_at < SimTime::from_micros(21_200),
            "last reply at {}",
            nominal.last_at
        );
    }

    #[test]
    fn drop_probability_loses_packets() {
        let cfg = SimConfig {
            drop_probability: 1.0,
            ..SimConfig::default()
        };
        let (mut sim, echo, _) = two_node_sim(cfg, 5);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 0);
        assert_eq!(sim.stats().packets_dropped, 5);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let cfg = SimConfig {
            duplicate_probability: 1.0,
            ..SimConfig::default()
        };
        let (mut sim, echo, _) = two_node_sim(cfg, 4);
        sim.run_until_idle();
        // Echo sees duplicated pings, and its replies are duplicated too.
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 8);
    }

    #[test]
    fn scheduled_drop_burst_starts_and_ends() {
        // A 100 % drop window that opens after the first ping and closes
        // before the last: only the pings inside the window vanish.
        struct Ticker {
            peer: NodeId,
            left: u32,
        }
        impl SimNode for Ticker {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start | NodeEvent::Timer(..) => {
                        if self.left > 0 {
                            self.left -= 1;
                            out.send(self.peer, Bytes::from_static(b"t"));
                            out.set_timer(Duration::from_millis(10), 0);
                        }
                    }
                    NodeEvent::Packet(_) => {}
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let echo = sim.add_node(Site::Lan, Box::new(Echo { seen: 0 }));
        sim.add_node(
            Site::Lan,
            Box::new(Ticker {
                peer: echo,
                left: 10,
            }),
        );
        // Ticks at 0,10,..,90 ms; window [15ms, 55ms) swallows 4 of them.
        sim.schedule_set_drop(SimTime::from_millis(15), 1.0);
        sim.schedule_set_drop(SimTime::from_millis(55), 0.0);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 6);
    }

    #[test]
    fn scheduled_duplicate_window_doubles_delivery() {
        let (mut sim, echo, _) = two_node_sim(SimConfig::default(), 4);
        sim.schedule_set_duplicate(SimTime::ZERO, 1.0);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 8);
    }

    #[test]
    fn scheduled_delay_spike_slows_packets_then_clears() {
        let rtt = |spike: bool| {
            let (mut sim, _, pinger) = two_node_sim(SimConfig::lan(5), 1);
            if spike {
                sim.schedule_set_extra_delay(SimTime::ZERO, Duration::from_millis(50));
            }
            sim.run_until_idle();
            sim.node_ref::<Pinger>(pinger).unwrap().last_at
        };
        let plain = rtt(false);
        let spiked = rtt(true);
        assert!(
            spiked >= plain + Duration::from_millis(100),
            "spike adds 50ms each way: plain {plain}, spiked {spiked}"
        );
    }

    #[test]
    fn crashed_nodes_stop_communicating() {
        let (mut sim, echo, pinger) = two_node_sim(SimConfig::default(), 1);
        sim.schedule_crash(SimTime::ZERO, echo);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Pinger>(pinger).unwrap().replies, 0);
        assert!(!sim.is_alive(echo));
        assert!(sim.is_alive(pinger));
    }

    #[test]
    fn restart_redelivers_start_and_discards_old_timers() {
        /// Counts its `Start`s; arms a long timer on every start whose
        /// firing is recorded. After a crash+restart the first
        /// incarnation's timer must never fire, the second's must.
        struct Phoenix {
            starts: u32,
            restarts: u32,
            fired: Vec<u64>,
        }
        impl SimNode for Phoenix {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start => {
                        self.starts += 1;
                        // Tag collides across incarnations on purpose:
                        // a rebuilt state machine reuses its tag space.
                        out.set_timer(Duration::from_millis(300), u64::from(self.starts));
                    }
                    NodeEvent::Timer(_, tag) => self.fired.push(tag),
                    NodeEvent::Packet(_) => {}
                }
            }
            fn on_restart(&mut self, _now: SimTime) {
                self.restarts += 1;
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let id = sim.add_node(
            Site::Lan,
            Box::new(Phoenix {
                starts: 0,
                restarts: 0,
                fired: Vec::new(),
            }),
        );
        sim.schedule_crash(SimTime::from_millis(100), id);
        sim.schedule_restart(SimTime::from_millis(200), id);
        sim.run_until(SimTime::from_millis(1000));
        assert!(sim.is_alive(id));
        let p = sim.node_ref::<Phoenix>(id).unwrap();
        assert_eq!(p.starts, 2, "restart must re-deliver Start exactly once");
        assert_eq!(p.restarts, 1);
        // The 300 ms timer armed at t=0 (tag 1) would fire at 300 ms —
        // after the restart — and must be suppressed; the one armed at
        // the restart (tag 2) fires at 500 ms.
        assert_eq!(p.fired, vec![2]);
    }

    #[test]
    fn restart_of_a_live_node_is_a_no_op() {
        let (mut sim, echo, pinger) = two_node_sim(SimConfig::default(), 2);
        sim.schedule_restart(SimTime::from_millis(1), echo);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Echo>(echo).unwrap().seen, 2);
        assert_eq!(sim.node_ref::<Pinger>(pinger).unwrap().replies, 2);
    }

    #[test]
    fn restarted_node_communicates_again() {
        let mut sim = Sim::new(SimConfig::default());
        let echo = sim.add_node(Site::Lan, Box::new(Echo { seen: 0 }));
        struct LatePinger {
            peer: NodeId,
            replies: u32,
        }
        impl SimNode for LatePinger {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start => {
                        out.set_timer(Duration::from_millis(500), 0);
                    }
                    NodeEvent::Timer(..) => out.send(self.peer, Bytes::from_static(b"hi")),
                    NodeEvent::Packet(_) => self.replies += 1,
                }
            }
        }
        let pinger = sim.add_node(
            Site::Lan,
            Box::new(LatePinger {
                peer: echo,
                replies: 0,
            }),
        );
        sim.schedule_crash(SimTime::from_millis(100), echo);
        sim.schedule_restart(SimTime::from_millis(300), echo);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node_ref::<LatePinger>(pinger).unwrap().replies, 1);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        struct PeriodicSender {
            peer: NodeId,
        }
        impl SimNode for PeriodicSender {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start | NodeEvent::Timer(..) => {
                        out.send(self.peer, Bytes::from_static(b"tick"));
                        out.set_timer(Duration::from_millis(10), 0);
                    }
                    NodeEvent::Packet(_) => {}
                }
            }
        }
        struct Counter {
            seen: u32,
        }
        impl SimNode for Counter {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, _out: &mut Outbox) {
                if let NodeEvent::Packet(_) = ev {
                    self.seen += 1;
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let counter = sim.add_node(Site::Lan, Box::new(Counter { seen: 0 }));
        let sender = sim.add_node(Site::Lan, Box::new(PeriodicSender { peer: counter }));
        sim.schedule_partition(SimTime::ZERO, vec![vec![sender], vec![counter]]);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.node_ref::<Counter>(counter).unwrap().seen, 0);
        sim.schedule_heal(SimTime::from_millis(100));
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.node_ref::<Counter>(counter).unwrap().seen > 5);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct TimerUser {
            fired: Vec<u64>,
        }
        impl SimNode for TimerUser {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start => {
                        out.set_timer(Duration::from_millis(3), 3);
                        out.set_timer(Duration::from_millis(1), 1);
                        let victim = out.set_timer(Duration::from_millis(2), 2);
                        out.cancel_timer(victim);
                    }
                    NodeEvent::Timer(_, tag) => self.fired.push(tag),
                    NodeEvent::Packet(_) => {}
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let id = sim.add_node(Site::Lan, Box::new(TimerUser { fired: Vec::new() }));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<TimerUser>(id).unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn cancel_after_set_from_later_event_still_works() {
        struct LateCancel {
            timer: Option<TimerId>,
            fired: u32,
        }
        impl SimNode for LateCancel {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start => {
                        self.timer = Some(out.set_timer(Duration::from_millis(50), 9));
                        out.set_timer(Duration::from_millis(1), 0);
                    }
                    NodeEvent::Timer(_, 0) => {
                        if let Some(t) = self.timer.take() {
                            out.cancel_timer(t);
                        }
                    }
                    NodeEvent::Timer(_, _) => self.fired += 1,
                    NodeEvent::Packet(_) => {}
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let id = sim.add_node(
            Site::Lan,
            Box::new(LateCancel {
                timer: None,
                fired: 0,
            }),
        );
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<LateCancel>(id).unwrap().fired, 0);
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut sim = Sim::new(SimConfig::default());
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn wan_pairs_are_slower_than_lan() {
        let elapsed = |a: Site, b: Site| {
            let mut sim = Sim::new(SimConfig::internet(9));
            let echo = sim.add_node(a, Box::new(Echo { seen: 0 }));
            let pinger = sim.add_node(
                b,
                Box::new(Pinger {
                    peer: echo,
                    n: 1,
                    replies: 0,
                    first_at: SimTime::ZERO,
                    last_at: SimTime::ZERO,
                }),
            );
            sim.run_until_idle();
            sim.node_ref::<Pinger>(pinger).unwrap().last_at
        };
        let lan = elapsed(Site::Lan, Site::Lan);
        let wan = elapsed(Site::Newcastle, Site::Pisa);
        assert!(wan > lan, "wan {wan} should exceed lan {lan}");
        assert!(wan >= SimTime::from_millis(13), "wan rtt was {wan}");
    }

    /// Emits one-byte sequence numbers on a fixed tick; the receiver
    /// records the order they arrive in.
    struct SeqSender {
        peer: NodeId,
        next: u8,
        count: u8,
        gap: Duration,
    }
    impl SimNode for SeqSender {
        fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
            match ev {
                NodeEvent::Start | NodeEvent::Timer(..) => {
                    if self.next < self.count {
                        out.send(self.peer, Bytes::copy_from_slice(&[self.next]));
                        self.next += 1;
                        out.set_timer(self.gap, 0);
                    }
                }
                NodeEvent::Packet(_) => {}
            }
        }
    }
    struct SeqRecorder {
        order: Vec<u8>,
    }
    impl SimNode for SeqRecorder {
        fn on_event(&mut self, _now: SimTime, ev: NodeEvent, _out: &mut Outbox) {
            if let NodeEvent::Packet(p) = ev {
                self.order.push(p.payload[0]);
            }
        }
    }

    fn seq_run(cfg: SimConfig, count: u8, gap: Duration) -> Vec<u8> {
        let mut sim = Sim::new(cfg);
        let rec = sim.add_node_with_service(
            Site::Lan,
            ServiceProfile::free(),
            Box::new(SeqRecorder { order: Vec::new() }),
        );
        sim.add_node_with_service(
            Site::Lan,
            ServiceProfile::free(),
            Box::new(SeqSender {
                peer: rec,
                next: 0,
                count,
                gap,
            }),
        );
        sim.run_until_idle();
        sim.node_ref::<SeqRecorder>(rec).unwrap().order.clone()
    }

    #[test]
    fn reorder_window_permutes_without_loss_or_duplication() {
        let base = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::constant(Duration::from_micros(100)),
                LatencySpec::constant(Duration::from_micros(100)),
            ),
            ..SimConfig::lan(11)
        };
        let plain = seq_run(base.clone(), 40, Duration::from_millis(1));
        assert_eq!(plain, (0..40).collect::<Vec<u8>>());

        let scrambled = seq_run(
            SimConfig {
                reorder_window: Duration::from_millis(20),
                ..base
            },
            40,
            Duration::from_millis(1),
        );
        // Same multiset of packets — nothing lost, nothing duplicated —
        // but a 20 ms window over 1 ms send gaps must permute the order.
        let mut sorted = scrambled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<u8>>());
        assert_ne!(scrambled, sorted, "window should scramble arrival order");
    }

    #[test]
    fn scheduled_reorder_window_opens_and_closes() {
        // Scramble only [5ms, 25ms): ticks outside the window stay in
        // order, so the tail of the sequence must arrive sorted.
        let cfg = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::constant(Duration::from_micros(100)),
                LatencySpec::constant(Duration::from_micros(100)),
            ),
            ..SimConfig::lan(3)
        };
        let mut sim = Sim::new(cfg);
        let rec = sim.add_node_with_service(
            Site::Lan,
            ServiceProfile::free(),
            Box::new(SeqRecorder { order: Vec::new() }),
        );
        sim.add_node_with_service(
            Site::Lan,
            ServiceProfile::free(),
            Box::new(SeqSender {
                peer: rec,
                next: 0,
                count: 60,
                gap: Duration::from_millis(1),
            }),
        );
        sim.schedule_set_reorder(SimTime::from_millis(5), Duration::from_millis(10));
        sim.schedule_set_reorder(SimTime::from_millis(25), Duration::ZERO);
        sim.run_until_idle();
        let order = sim.node_ref::<SeqRecorder>(rec).unwrap().order.clone();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60).collect::<Vec<u8>>());
        // Ticks from 40 ms on left after the window closed and after every
        // scrambled packet's worst-case arrival; they arrive in order.
        let tail: Vec<u8> = order.iter().copied().filter(|&b| b >= 40).collect();
        assert_eq!(tail, (40..60).collect::<Vec<u8>>());
    }

    #[test]
    fn bandwidth_cap_serialises_frames_fifo_per_link() {
        // 8 KiB-sized frames sent back-to-back over a 1 MiB/s link take
        // ~8 ms each to serialize: the last of 4 arrives after ~32 ms.
        // Uncapped, all four arrive within the constant latency.
        let last_arrival = |bandwidth: BandwidthMatrix| {
            let cfg = SimConfig {
                latency: LatencyMatrix::uniform(
                    LatencySpec::constant(Duration::from_micros(100)),
                    LatencySpec::constant(Duration::from_micros(100)),
                ),
                default_service: ServiceProfile::free(),
                bandwidth,
                ..SimConfig::default()
            };
            let mut sim = Sim::new(cfg);
            let rec = sim.add_node(Site::Lan, Box::new(SeqRecorder { order: Vec::new() }));
            struct Burst {
                peer: NodeId,
            }
            impl SimNode for Burst {
                fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                    if let NodeEvent::Start = ev {
                        for i in 0..4u8 {
                            out.send(self.peer, Bytes::from(vec![i; 8 * 1024]));
                        }
                    }
                }
            }
            sim.add_node(Site::Lan, Box::new(Burst { peer: rec }));
            sim.run_until_idle();
            assert_eq!(sim.node_ref::<SeqRecorder>(rec).unwrap().order.len(), 4);
            sim.now()
        };
        let mut capped = BandwidthMatrix::unlimited();
        capped.set_local(1024 * 1024);
        let slow = last_arrival(capped);
        let fast = last_arrival(BandwidthMatrix::unlimited());
        assert!(fast < SimTime::from_millis(1), "uncapped run took {fast}");
        assert!(
            slow >= SimTime::from_millis(31),
            "capped run finished at {slow}"
        );
    }

    #[test]
    fn scheduled_bandwidth_override_applies_and_clears() {
        // Throttle the whole network to 64 KiB/s for [0, 40ms): a 8 KiB
        // frame takes 125 ms to serialize — but the link frees again
        // after the override clears, so a frame sent at 200 ms flows at
        // full speed.
        let cfg = SimConfig {
            latency: LatencyMatrix::uniform(
                LatencySpec::constant(Duration::from_micros(100)),
                LatencySpec::constant(Duration::from_micros(100)),
            ),
            default_service: ServiceProfile::free(),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg);
        let rec = sim.add_node(Site::Lan, Box::new(SeqRecorder { order: Vec::new() }));
        struct TwoFrames {
            peer: NodeId,
        }
        impl SimNode for TwoFrames {
            fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
                match ev {
                    NodeEvent::Start => {
                        out.send(self.peer, Bytes::from(vec![0u8; 8 * 1024]));
                        out.set_timer(Duration::from_millis(200), 0);
                    }
                    NodeEvent::Timer(..) => {
                        out.send(self.peer, Bytes::from(vec![1u8; 8 * 1024]));
                    }
                    NodeEvent::Packet(_) => {}
                }
            }
        }
        sim.add_node(Site::Lan, Box::new(TwoFrames { peer: rec }));
        sim.schedule_set_bandwidth(SimTime::ZERO, Some(64 * 1024));
        sim.schedule_set_bandwidth(SimTime::from_millis(40), None);
        sim.run_until_idle();
        // Frame 0 serialized at 64 KiB/s: arrives ~125 ms. Frame 1 left
        // after the restore: arrives ~200.1 ms, well before 125+125.
        assert!(
            sim.now() < SimTime::from_millis(210),
            "second frame should be uncapped, run ended at {}",
            sim.now()
        );
        assert_eq!(sim.node_ref::<SeqRecorder>(rec).unwrap().order, vec![0, 1]);
    }
}
