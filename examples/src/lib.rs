//! Runnable examples for the NewTop object group service. See the
//! binaries under `src/bin/`:
//!
//! * `quickstart` — a replicated echo service over the threaded runtime.
//! * `replicated_bank` — active replication with closed groups: a crash
//!   is masked without client involvement.
//! * `conference` — peer participation: a three-way chat with identical
//!   totally-ordered transcripts.
//! * `passive_store` — passive replication (restricted open group +
//!   asynchronous forwarding): primary crash, promotion, rebind.
//! * `group_to_group` — a client *group* invoking a server group through
//!   a client monitor group.
