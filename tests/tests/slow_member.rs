//! Overload integration: a group with one slow member under sustained
//! load must stay within its memory bound (the send window caps every
//! sender's in-flight buffer), shed the excess instead of queueing it,
//! and — once the slow member's CPU recovers — converge so that all
//! members have delivered the identical totally-ordered sequence.

use std::time::Duration;

use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId, OrderProtocol};
use newtop_gcs::testkit::GcsHarness;
use newtop_net::sim::SimConfig;
use newtop_net::site::Site;
use newtop_net::time::SimTime;

fn run_slow_member(ordering: OrderProtocol, seed: u64) {
    let mut h = GcsHarness::new(SimConfig::lan(seed));
    let roster = h.add_nodes(Site::Lan, 3);
    let group = GroupId::new("slow");
    let config = GroupConfig::peer()
        .with_ordering(ordering)
        .with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &group, &config, &roster);

    // One member runs 4x slower than the rest for most of the burst.
    let slow = roster[2];
    h.sim
        .schedule_set_service_factor(SimTime::from_millis(50), Some(slow), 4.0);
    h.sim
        .schedule_set_service_factor(SimTime::from_millis(900), Some(slow), 1.0);

    // Sustained load: every member multicasts every 3 ms throughout the
    // slow window — far more than the slowed group can acknowledge.
    let mut offered = 0u64;
    for (k, &node) in roster.iter().enumerate() {
        let mut at = 60 + k as u64;
        let mut i = 0u64;
        while at < 900 {
            let payload = format!("{node}/{i}");
            h.multicast(
                SimTime::from_millis(at),
                node,
                &group,
                DeliveryOrder::Total,
                payload,
            );
            offered += 1;
            at += 3;
            i += 1;
        }
    }
    // Plenty of quiet time for the recovered member to drain its backlog.
    h.run_until(SimTime::from_millis(6000));

    // Memory bound: no sender's in-flight buffer ever exceeded the send
    // window, and the metrics gauge agrees.
    let mut shed = 0u64;
    for &n in &roster {
        let gcs = h.node(n).gcs();
        let flow = gcs.flow_of(&group).expect("still a member");
        assert!(
            flow.peak_in_flight() <= flow.window(),
            "node {n}: peak in-flight {} burst past the window {}",
            flow.peak_in_flight(),
            flow.window()
        );
        for obs in gcs.observabilities() {
            let peak_gauge = obs.metrics.gauge("flow.queue_depth_peak").unwrap_or(0);
            assert!(
                peak_gauge <= flow.window() as i64,
                "node {n}: flow.queue_depth_peak {peak_gauge} exceeds the window"
            );
            shed += obs.metrics.counter("flow.shed");
        }
    }
    assert!(
        shed > 0,
        "sustained load never tripped admission control ({offered} offered)"
    );

    // No member was evicted: the group rode out the slowdown without a
    // view change, so every admitted multicast reached everyone.
    for &n in &roster {
        assert_eq!(
            h.views(n, &group).len(),
            1,
            "node {n} installed extra views"
        );
    }

    // Catch-up: after the factor is restored all three members hold the
    // identical totally-ordered delivery sequence covering every
    // admitted (non-shed) multicast.
    let reference = h.delivered(roster[0], &group);
    assert_eq!(
        reference.len() as u64,
        offered - shed,
        "admitted multicasts were lost (offered {offered}, shed {shed})"
    );
    for &n in &roster[1..] {
        assert_eq!(
            h.delivered(n, &group),
            reference,
            "node {n} diverged from (or lags) the group's delivery order"
        );
    }
}

#[test]
fn slow_member_stays_bounded_and_catches_up_symmetric() {
    run_slow_member(OrderProtocol::Symmetric, 42);
}

#[test]
fn slow_member_stays_bounded_and_catches_up_asymmetric() {
    run_slow_member(OrderProtocol::Asymmetric, 43);
}
