/root/repo/target/release/deps/newtop_integration-33c55c1da9ba6cc8.d: tests/src/lib.rs

/root/repo/target/release/deps/libnewtop_integration-33c55c1da9ba6cc8.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libnewtop_integration-33c55c1da9ba6cc8.rmeta: tests/src/lib.rs

tests/src/lib.rs:
