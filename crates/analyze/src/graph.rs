//! Workspace-wide call graph: the resolver behind the reachability
//! rules.
//!
//! PR 5's rule families were per-function token scans plus a flat
//! name→body map; every protocol bug since (the view-install straddle,
//! the loopback ordering race, the lock-across-send sites) lived in the
//! *interaction* between functions. This module indexes every `fn` and
//! method in `crates/*/src`, extracts one edge per call site, and lets
//! rules ask reachability questions instead of scanning bodies.
//!
//! ## Over-approximation policy
//!
//! Name-based resolution cannot see types, so every ambiguity resolves
//! toward *more* edges (a rule may flag a path that cannot execute, and
//! the allowlist absorbs it; a rule must never miss a path that can):
//!
//! 1. **Path calls** `Type::f(...)` resolve to every `f` defined in an
//!    `impl Type`/`trait Type` block anywhere in the workspace (`Self::`
//!    uses the caller's own impl type). A qualifier that names no
//!    workspace type at all (`BTreeMap::new`, `Instant::now`) is a
//!    std/vendored call and contributes no edge — falling back to every
//!    same-named function would wire every constructor in the workspace
//!    to every `new()` call site.
//! 2. **Method calls** `recv.f(...)`: when the receiver is `self` and
//!    the caller's impl type defines `f`, the call resolves to that
//!    type's `f`. When the receiver identifier names a type (`nso` →
//!    `Nso`, `out` → `Outbox`, `store` → `DurableStore`;
//!    case-insensitive ≥ 3-char prefix or suffix of the type name), it
//!    resolves to that type's `f`. Otherwise — including every
//!    trait-object and generic dispatch site — the call conservatively
//!    resolves to **every** impl of `f` in the workspace (the "any
//!    impl" rule for dynamic dispatch).
//! 3. **Bare calls** `f(...)` resolve within the caller's crate and its
//!    transitive workspace dependencies (a bare name cannot name an
//!    item from a crate the caller does not depend on); free functions
//!    win over methods of the same name, and an unresolvable name (a
//!    closure parameter, a std function) contributes no edge.
//!
//! Test functions (`#[cfg(test)]`/`#[test]`) are excluded from the
//! graph entirely: the rules guard production protocol paths.
//!
//! Alongside the edges, the builder records which lock guards are live
//! at each call site and each lock acquisition (same `let guard = …
//! .lock()/.read()/.write()` shapes as the lock-hygiene family, plus
//! statement-scoped temporaries), which feeds the lock-order deadlock
//! rule.

use crate::items::{FnItem, ParsedFile};
use crate::lexer::{TokKind, Token};
use crate::rules::crate_of;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(...)` — a bare name.
    Bare,
    /// `recv.f(...)` — a method call; the receiver identifier when one
    /// directly precedes the dot (`None` for `(...).f()` chains).
    Method(Option<String>),
    /// `Qual::f(...)` — a path call through the given qualifier.
    Path(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Shape of the call.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
    /// Lock names (crate-qualified, see [`LockAcquire`]) held when the
    /// call is made.
    pub locks_held: Vec<String>,
}

/// One lock acquisition (`.lock()`/`.read()`/`.write()`) inside a body.
#[derive(Clone, Debug)]
pub struct LockAcquire {
    /// Crate-qualified lock name: `crate/last-path-segment` of the
    /// receiver expression (`self.shared.conns.lock()` in `crates/net`
    /// → `net/conns`). Name-based identity is an over-approximation in
    /// both directions; crate qualification keeps unrelated same-named
    /// fields in different crates from aliasing.
    pub lock: String,
    /// Locks already held at the acquisition point.
    pub held: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

/// A function node: its item plus everything the rules ask about its
/// body.
#[derive(Debug)]
pub struct FnNode {
    /// Which parsed file the function lives in.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
    /// Crate name (`gcs` for `crates/gcs/src/...`), empty when the path
    /// is not under `crates/`.
    pub krate: String,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockAcquire>,
    /// Send-like calls (`send`/`try_send`/`write_all`/…) present
    /// directly in the body.
    pub sends_directly: bool,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// The parsed files the graph was built from.
    pub files: &'a [ParsedFile],
    /// All production (non-test) functions.
    pub fns: Vec<FnNode>,
    /// Resolved edges: `edges[f]` lists (callee, call-site index in
    /// `fns[f].calls`).
    pub edges: Vec<Vec<(FnId, usize)>>,
    /// name → all fns with that name.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// (owner, name) → fns.
    by_owner: BTreeMap<(String, String), Vec<FnId>>,
    /// Owner-type names, lowercased, for the receiver heuristic.
    type_names: BTreeMap<String, Vec<String>>,
}

/// Calls that hand data to a transport or queue; holding a lock across
/// one (directly or transitively) is the deadlock / priority-inversion
/// shape the lock rules exist for.
pub const SEND_LIKE: &[&str] = &[
    "send",
    "try_send",
    "send_fanout",
    "write_all",
    "oneway",
    "oneway_fanout",
    "connect",
    "recv",
];

/// Handler names that the simulator dispatches through trait objects
/// (`dyn NodeApp` and friends). Method calls with these names always
/// resolve to every impl — the receiver-name heuristic must not narrow
/// them, or a variable like `app` would pin dispatch to one app type.
pub const DYN_DISPATCH_NAMES: &[&str] = &[
    "on_event",
    "on_message",
    "on_packet",
    "on_timer",
    "on_start",
    "on_output",
    "on_gcs_message",
];

/// The workspace dependency edges, as declared in `crates/*/Cargo.toml`
/// (package `newtop` is `crates/core`). Bare-name resolution prunes
/// candidate callees to the caller's dependency closure; a unit test
/// cross-checks this table against the real manifests so it cannot rot.
pub const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("analyze", &[]),
    ("flow", &[]),
    ("net", &["flow"]),
    ("orb", &["net"]),
    ("gcs", &["flow", "net", "orb"]),
    ("invocation", &["flow", "net", "orb", "gcs"]),
    ("core", &["net", "orb", "gcs", "invocation"]),
    ("dir", &["flow", "net", "orb", "gcs", "core"]),
    ("rt", &["flow", "net", "orb", "gcs", "invocation", "core"]),
    (
        "workloads",
        &["net", "orb", "gcs", "invocation", "core", "dir"],
    ),
    ("check", &["net", "gcs", "invocation", "workloads", "dir"]),
    (
        "bench",
        &[
            "flow",
            "net",
            "rt",
            "orb",
            "gcs",
            "invocation",
            "core",
            "workloads",
            "dir",
            "check",
        ],
    ),
];

/// The transitive dependency closure of `krate`, itself included.
#[must_use]
pub fn dep_closure(krate: &str) -> BTreeSet<&'static str> {
    let mut out: BTreeSet<&'static str> = BTreeSet::new();
    let mut stack: Vec<&str> = vec![krate];
    while let Some(c) = stack.pop() {
        let Some((name, deps)) = CRATE_DEPS.iter().find(|(name, _)| *name == c) else {
            continue;
        };
        if out.insert(name) {
            stack.extend(deps.iter().copied());
        }
    }
    out
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every non-test function in `files`.
    #[must_use]
    pub fn build(files: &'a [ParsedFile]) -> Self {
        let mut g = CallGraph {
            files,
            fns: Vec::new(),
            edges: Vec::new(),
            by_name: BTreeMap::new(),
            by_owner: BTreeMap::new(),
            type_names: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            let krate = crate_of(&file.path).unwrap_or("").to_owned();
            for (ii, item) in file.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let id = g.fns.len();
                let body = &file.tokens[item.body.0..item.body.1];
                let (calls, locks, sends_directly) = scan_body(body, &krate);
                g.fns.push(FnNode {
                    file: fi,
                    item: ii,
                    krate: krate.clone(),
                    calls,
                    locks,
                    sends_directly,
                });
                g.by_name.entry(item.name.clone()).or_default().push(id);
                if let Some(owner) = &item.owner {
                    g.by_owner
                        .entry((owner.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                    g.type_names
                        .entry(owner.to_ascii_lowercase())
                        .or_default()
                        .push(owner.clone());
                }
            }
        }
        g.edges = (0..g.fns.len()).map(|id| g.resolve_calls(id)).collect();
        g
    }

    /// The [`FnItem`] behind a node.
    #[must_use]
    pub fn item(&self, id: FnId) -> &'a FnItem {
        &self.files[self.fns[id].file].fns[self.fns[id].item]
    }

    /// The parsed file behind a node.
    #[must_use]
    pub fn file(&self, id: FnId) -> &'a ParsedFile {
        &self.files[self.fns[id].file]
    }

    /// The body tokens of a node.
    #[must_use]
    pub fn body(&self, id: FnId) -> &'a [Token] {
        let item = self.item(id);
        &self.file(id).tokens[item.body.0..item.body.1]
    }

    /// All nodes matching an (owner, name) entry-point pattern; `None`
    /// matches anything.
    pub fn matching(
        &self,
        owner: Option<&str>,
        name: Option<&str>,
    ) -> impl Iterator<Item = FnId> + '_ {
        let owner = owner.map(str::to_owned);
        let name = name.map(str::to_owned);
        (0..self.fns.len()).filter(move |&id| {
            let item = self.item(id);
            owner
                .as_deref()
                .is_none_or(|o| item.owner.as_deref() == Some(o))
                && name.as_deref().is_none_or(|n| item.name == n)
        })
    }

    /// Breadth-first reachability from `seeds`, optionally restricted to
    /// nodes satisfying `in_scope` (seeds are always included; edges
    /// never traverse an out-of-scope node).
    #[must_use]
    pub fn reachable(&self, seeds: &[FnId], in_scope: impl Fn(FnId) -> bool) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = seeds.iter().copied().collect();
        let mut queue: Vec<FnId> = seeds.to_vec();
        while let Some(f) = queue.pop() {
            for &(callee, _) in &self.edges[f] {
                if in_scope(callee) && seen.insert(callee) {
                    queue.push(callee);
                }
            }
        }
        seen
    }

    /// For every function, whether a send-like call is reachable from it
    /// (including its own body). Fixpoint over the cyclic graph.
    #[must_use]
    pub fn reaches_send(&self) -> Vec<bool> {
        let mut reaches: Vec<bool> = self.fns.iter().map(|f| f.sends_directly).collect();
        self.fix_bool(&mut reaches);
        reaches
    }

    /// For every function, the set of lock names acquired by it or by
    /// anything reachable from it — *excluding* paths through send-like
    /// call sites. Locks taken on the far side of a transport send or
    /// queue hand-off are the lock-hygiene family's finding (holding
    /// anything across the hand-off is already flagged); folding them in
    /// here would wire every caller of `send` to the transport's
    /// internal locks and drown the lock-order rule in induced cycles.
    #[must_use]
    pub fn acquires_transitively(&self) -> Vec<BTreeSet<String>> {
        let mut acquires: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| f.locks.iter().map(|l| l.lock.clone()).collect())
            .collect();
        // Worklist fixpoint: propagate callee sets into callers.
        let callers = self.reverse_edges_excluding_sends();
        let mut work: Vec<FnId> = (0..self.fns.len()).collect();
        while let Some(f) = work.pop() {
            let mine: BTreeSet<String> = acquires[f].clone();
            for &caller in &callers[f] {
                let before = acquires[caller].len();
                acquires[caller].extend(mine.iter().cloned());
                if acquires[caller].len() > before && !work.contains(&caller) {
                    work.push(caller);
                }
            }
        }
        acquires
    }

    /// Generic boolean fixpoint: `flags[f] |= any(flags[callee])`.
    fn fix_bool(&self, flags: &mut [bool]) {
        let callers = self.reverse_edges();
        let mut work: Vec<FnId> = (0..flags.len()).filter(|&f| flags[f]).collect();
        while let Some(f) = work.pop() {
            for &caller in &callers[f] {
                if !flags[caller] {
                    flags[caller] = true;
                    work.push(caller);
                }
            }
        }
    }

    /// caller lists per callee.
    fn reverse_edges(&self) -> Vec<Vec<FnId>> {
        let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); self.fns.len()];
        for (f, outs) in self.edges.iter().enumerate() {
            for &(callee, _) in outs {
                rev[callee].push(f);
            }
        }
        for r in &mut rev {
            r.sort_unstable();
            r.dedup();
        }
        rev
    }

    /// caller lists per callee, ignoring edges taken at send-like call
    /// sites (see [`Self::acquires_transitively`]).
    fn reverse_edges_excluding_sends(&self) -> Vec<Vec<FnId>> {
        let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); self.fns.len()];
        for (f, outs) in self.edges.iter().enumerate() {
            for &(callee, ci) in outs {
                if !SEND_LIKE.contains(&self.fns[f].calls[ci].name.as_str()) {
                    rev[callee].push(f);
                }
            }
        }
        for r in &mut rev {
            r.sort_unstable();
            r.dedup();
        }
        rev
    }

    /// Resolves every call site of `id` per the module policy.
    fn resolve_calls(&self, id: FnId) -> Vec<(FnId, usize)> {
        let caller = &self.fns[id];
        let caller_owner = self.item(id).owner.clone();
        let deps = dep_closure(&caller.krate);
        let mut out = Vec::new();
        for (ci, call) in caller.calls.iter().enumerate() {
            let targets: Vec<FnId> = match &call.kind {
                CallKind::Path(qual) => {
                    let owner = if qual == "Self" {
                        caller_owner.clone()
                    } else {
                        Some(qual.clone())
                    };
                    match owner {
                        Some(o) => self
                            .by_owner
                            .get(&(o, call.name.clone()))
                            .cloned()
                            .unwrap_or_default(),
                        None => Vec::new(),
                    }
                }
                CallKind::Method(recv) => self.resolve_method(call, recv.as_deref(), &caller_owner),
                CallKind::Bare => self
                    .any_named(&call.name)
                    .into_iter()
                    .filter(|&t| {
                        self.fns[t].krate.is_empty() || deps.contains(self.fns[t].krate.as_str())
                    })
                    .collect(),
            };
            for t in targets {
                if t != id {
                    out.push((t, ci));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn resolve_method(
        &self,
        call: &CallSite,
        recv: Option<&str>,
        caller_owner: &Option<String>,
    ) -> Vec<FnId> {
        // `self.f()` → the caller's own type, if it defines `f`.
        if recv == Some("self") {
            if let Some(owner) = caller_owner {
                if let Some(t) = self.by_owner.get(&(owner.clone(), call.name.clone())) {
                    return t.clone();
                }
            }
        } else if let Some(r) = recv {
            // Receiver-name heuristic: `nso.f()` → `Nso::f`,
            // `store.f()` → `DurableStore::f`. Only when the receiver
            // is long enough to be meaningful, matches a type name as a
            // prefix or suffix, and the typed candidates actually
            // define the method. Handler-style names are the simulator's
            // trait-object dispatch surface (`node.on_event(..)` reaches
            // every app impl), so they never narrow: a receiver that
            // happens to suffix one impl type must not hide the others
            // from the panic-freedom walk.
            if r.len() >= 3 && !DYN_DISPATCH_NAMES.contains(&call.name.as_str()) {
                let rl = r.to_ascii_lowercase();
                let mut typed: Vec<FnId> = Vec::new();
                for (lower, owners) in &self.type_names {
                    if !lower.starts_with(&rl) && !lower.ends_with(&rl) {
                        continue;
                    }
                    for owner in owners {
                        if let Some(t) = self.by_owner.get(&(owner.clone(), call.name.clone())) {
                            typed.extend(t.iter().copied());
                        }
                    }
                }
                if !typed.is_empty() {
                    typed.sort_unstable();
                    typed.dedup();
                    return typed;
                }
            }
        }
        // Any-impl over-approximation for dynamic dispatch: every
        // function with this name that is a method of *something*, plus
        // free functions of the name (UFCS).
        self.any_named(&call.name)
    }

    fn any_named(&self, name: &str) -> Vec<FnId> {
        self.by_name.get(name).cloned().unwrap_or_default()
    }
}

/// Rust keywords and control-flow words that precede `(` without being
/// calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "while"
            | "loop"
            | "mut"
            | "move"
            | "as"
            | "let"
            | "ref"
            | "fn"
            | "for"
            | "impl"
            | "dyn"
            | "where"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

/// One forward pass over a body: call sites, lock acquisitions, and
/// direct send-like calls, with live-guard tracking.
///
/// Guard model (same over-approximation as the lock-hygiene family):
/// `let g = ….lock()/.read()/.write()…;` makes `g` live until its
/// enclosing block closes or an explicit `drop(g)`; a statement-level
/// acquisition without a binding is live until the statement's `;`.
fn scan_body(toks: &[Token], krate: &str) -> (Vec<CallSite>, Vec<LockAcquire>, bool) {
    let mut calls = Vec::new();
    let mut locks = Vec::new();
    let mut sends = false;

    // Live named guards: (guard name, lock name, block depth at bind).
    let mut guards: Vec<(String, String, i32)> = Vec::new();
    // Statement-scoped lock (unbound temporary), cleared at `;`.
    let mut stmt_lock: Option<String> = None;
    // Pending `let` binding: (guard name, Some(lock) once acquired).
    let mut pending_let: Option<(String, Option<String>)> = None;
    let mut depth = 0i32;

    let held = |guards: &[(String, String, i32)], stmt: &Option<String>| -> Vec<String> {
        let mut h: Vec<String> = guards.iter().map(|g| g.1.clone()).collect();
        if let Some(s) = stmt {
            h.push(s.clone());
        }
        h.sort();
        h.dedup();
        h
    };

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => depth += 1,
            TokKind::Punct if t.text == "}" => {
                depth -= 1;
                guards.retain(|g| g.2 <= depth);
            }
            TokKind::Punct if t.text == ";" => {
                if let Some((name, Some(lock))) = pending_let.take() {
                    guards.push((name, lock, depth));
                }
                pending_let = None;
                stmt_lock = None;
            }
            TokKind::Ident if t.text == "let" => {
                // `let [mut] NAME =` starts a possible guard binding.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|x| x.is_ident("mut")) {
                    j += 1;
                }
                if let (Some(name), Some(eq)) = (toks.get(j), toks.get(j + 1)) {
                    if name.kind == TokKind::Ident && eq.is_punct('=') {
                        pending_let = Some((name.text.clone(), None));
                    }
                }
            }
            TokKind::Ident
                if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct(')')) =>
            {
                if let Some(g) = toks.get(i + 2) {
                    guards.retain(|(name, _, _)| name != &g.text);
                }
                i += 4;
                continue;
            }
            TokKind::Ident
                if matches!(t.text.as_str(), "lock" | "read" | "write")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(')')) =>
            {
                // `<path>.lock()` — lock name is the last identifier of
                // the receiver path.
                let lock_field = (0..i.saturating_sub(1))
                    .rev()
                    .map(|k| &toks[k])
                    .take_while(|p| p.kind == TokKind::Ident || p.is_punct('.'))
                    .find(|p| p.kind == TokKind::Ident)
                    .map_or_else(|| "?".to_owned(), |p| p.text.clone());
                let lock = format!("{krate}/{lock_field}");
                locks.push(LockAcquire {
                    lock: lock.clone(),
                    held: held(&guards, &stmt_lock),
                    line: t.line,
                });
                match &mut pending_let {
                    Some((_, slot)) if slot.is_none() => *slot = Some(lock),
                    _ => stmt_lock = Some(lock),
                }
                i += 3;
                continue;
            }
            TokKind::Ident
                if !is_keyword(&t.text) && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                // A call site: classify by what precedes the name.
                let kind = if i > 0 && toks[i - 1].is_punct('.') {
                    let recv = (i >= 2)
                        .then(|| &toks[i - 2])
                        .filter(|r| r.kind == TokKind::Ident && !r.is_ident("await"))
                        // Only a *direct* `ident.method(` receiver counts;
                        // `a.b.method(` names the field, which is still
                        // useful for the type heuristic's failure mode
                        // (falls through to any-impl).
                        .map(|r| r.text.clone());
                    CallKind::Method(recv)
                } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                    let qual = (i >= 3)
                        .then(|| &toks[i - 3])
                        .filter(|q| q.kind == TokKind::Ident)
                        .map_or_else(|| "?".to_owned(), |q| q.text.clone());
                    CallKind::Path(qual)
                } else {
                    CallKind::Bare
                };
                if SEND_LIKE.contains(&t.text.as_str()) {
                    sends = true;
                }
                calls.push(CallSite {
                    name: t.text.clone(),
                    kind,
                    line: t.line,
                    locks_held: held(&guards, &stmt_lock),
                });
            }
            _ => {}
        }
        i += 1;
    }
    (calls, locks, sends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::lexer::lex;

    fn graph(files: &[(&str, &str)]) -> (Vec<ParsedFile>, Vec<(String, Vec<String>)>) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(path, src)| parse_file(path, lex(src)))
            .collect();
        let g = CallGraph::build(&parsed);
        let edges = (0..g.fns.len())
            .map(|id| {
                let name = g.item(id).name.clone();
                let mut callees: Vec<String> = g.edges[id]
                    .iter()
                    .map(|&(c, _)| g.item(c).name.clone())
                    .collect();
                callees.sort();
                callees.dedup();
                (name, callees)
            })
            .collect();
        (parsed, edges)
    }

    fn callees_of<'e>(edges: &'e [(String, Vec<String>)], name: &str) -> &'e [String] {
        &edges.iter().find(|(n, _)| n == name).unwrap().1
    }

    #[test]
    fn bare_calls_resolve_within_dep_closure_only() {
        // `gcs` does not depend on `workloads`; a bare `helper()` in gcs
        // must not resolve to the workloads function of the same name.
        let (_, edges) = graph(&[
            (
                "crates/gcs/src/a.rs",
                "fn entry() { helper(); }\nfn helper() {}",
            ),
            ("crates/workloads/src/b.rs", "fn helper() {}"),
        ]);
        assert_eq!(callees_of(&edges, "entry"), ["helper"]);
        // ...and the resolved helper is the gcs one (same-crate).
        let parsed: Vec<ParsedFile> = [
            (
                "crates/gcs/src/a.rs",
                "fn entry() { helper(); }\nfn helper() {}",
            ),
            ("crates/workloads/src/b.rs", "fn helper() {}"),
        ]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let entry = g.matching(None, Some("entry")).next().unwrap();
        for &(callee, _) in &g.edges[entry] {
            assert_eq!(g.fns[callee].krate, "gcs");
        }
    }

    #[test]
    fn method_calls_use_any_impl_for_dynamic_dispatch() {
        // The simulator's `app.on_event(...)` must reach every impl of
        // `on_event`, whichever crate it lives in — that is the
        // conservative story for trait objects.
        let parsed: Vec<ParsedFile> = [
            (
                "crates/net/src/sim.rs",
                "fn drive(app: &mut dyn NodeApp) { app.on_event(); }",
            ),
            (
                "crates/workloads/src/apps.rs",
                "impl ClientApp { fn on_event(&mut self) {} }",
            ),
            (
                "crates/dir/src/harness.rs",
                "impl DurableGcsNode { fn on_event(&mut self) {} }",
            ),
        ]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let drive = g.matching(None, Some("drive")).next().unwrap();
        let mut owners: Vec<&str> = g.edges[drive]
            .iter()
            .filter_map(|&(c, _)| g.item(c).owner.as_deref())
            .collect();
        owners.sort_unstable();
        assert_eq!(owners, ["ClientApp", "DurableGcsNode"]);
    }

    #[test]
    fn self_method_calls_prefer_the_owner_impl() {
        let parsed: Vec<ParsedFile> = [
            (
                "crates/gcs/src/a.rs",
                "impl Member { fn go(&self) { self.step(); } fn step(&self) {} }",
            ),
            (
                "crates/orb/src/b.rs",
                "impl Orb { fn step(&self) { panic!() } }",
            ),
        ]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let go = g.matching(None, Some("go")).next().unwrap();
        assert_eq!(g.edges[go].len(), 1);
        let (callee, _) = g.edges[go][0];
        assert_eq!(g.item(callee).owner.as_deref(), Some("Member"));
    }

    #[test]
    fn receiver_name_heuristic_narrows_to_the_type() {
        let parsed: Vec<ParsedFile> = [
            (
                "crates/rt/src/lib.rs",
                "fn loop_once(nso: &mut Nso) { nso.drain_output(); }",
            ),
            (
                "crates/core/src/nso.rs",
                "impl Nso { fn drain_output(&mut self) {} }",
            ),
            (
                "crates/workloads/src/apps.rs",
                "impl OtherThing { fn drain_output(&mut self) {} }",
            ),
        ]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let f = g.matching(None, Some("loop_once")).next().unwrap();
        assert_eq!(g.edges[f].len(), 1);
        let (callee, _) = g.edges[f][0];
        assert_eq!(g.item(callee).owner.as_deref(), Some("Nso"));
    }

    #[test]
    fn method_vs_function_name_collisions_across_crates() {
        // A method `decode` and a free fn `decode` in different crates:
        // a path call `Frame::decode` resolves to the impl only.
        let parsed: Vec<ParsedFile> = [
            (
                "crates/orb/src/giop.rs",
                "impl Frame { fn decode(b: &[u8]) -> Frame { Frame } }",
            ),
            ("crates/workloads/src/x.rs", "fn decode(s: &str) {}"),
            (
                "crates/gcs/src/m.rs",
                "fn ingest(b: &[u8]) { Frame::decode(b); }",
            ),
        ]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let f = g.matching(None, Some("ingest")).next().unwrap();
        assert_eq!(g.edges[f].len(), 1);
        let (callee, _) = g.edges[f][0];
        assert_eq!(g.item(callee).owner.as_deref(), Some("Frame"));
    }

    #[test]
    fn reachability_is_transitive() {
        let parsed: Vec<ParsedFile> = [(
            "crates/gcs/src/a.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}",
        )]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let a = g.matching(None, Some("a")).next().unwrap();
        let seen = g.reachable(&[a], |_| true);
        let names: Vec<&str> = seen.iter().map(|&id| g.item(id).name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn lock_guards_tracked_across_call_sites() {
        let parsed: Vec<ParsedFile> = [(
            "crates/net/src/tcp.rs",
            "fn f(&self) { let g = self.conns.lock(); self.helper(); drop(g); self.late(); }",
        )]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let f = g.matching(None, Some("f")).next().unwrap();
        let calls = &g.fns[f].calls;
        let helper = calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(helper.locks_held, ["net/conns"]);
        let late = calls.iter().find(|c| c.name == "late").unwrap();
        assert!(late.locks_held.is_empty(), "{late:?}");
    }

    #[test]
    fn statement_temporaries_hold_until_semicolon() {
        let parsed: Vec<ParsedFile> = [(
            "crates/dir/src/store.rs",
            "fn f(&self) { self.store.lock().append(1); self.after(); }",
        )]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let f = g.matching(None, Some("f")).next().unwrap();
        let calls = &g.fns[f].calls;
        let append = calls.iter().find(|c| c.name == "append").unwrap();
        assert_eq!(append.locks_held, ["dir/store"]);
        let after = calls.iter().find(|c| c.name == "after").unwrap();
        assert!(after.locks_held.is_empty());
    }

    #[test]
    fn acquires_and_sends_propagate_transitively() {
        let parsed: Vec<ParsedFile> = [(
            "crates/net/src/a.rs",
            "fn outer() { mid(); }\n\
             fn mid() { inner(); }\n\
             fn inner(&self) { let g = self.q.lock(); self.tx.try_send(1); }",
        )]
        .iter()
        .map(|(p, s)| parse_file(p, lex(s)))
        .collect();
        let g = CallGraph::build(&parsed);
        let outer = g.matching(None, Some("outer")).next().unwrap();
        let sends = g.reaches_send();
        assert!(sends[outer]);
        let acq = g.acquires_transitively();
        assert!(acq[outer].contains("net/q"), "{:?}", acq[outer]);
    }

    #[test]
    fn dep_closure_matches_cargo_manifests() {
        // The hardcoded table must agree with the real Cargo.tomls.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for (krate, deps) in CRATE_DEPS {
            let manifest = root.join("crates").join(krate).join("Cargo.toml");
            let Ok(text) = std::fs::read_to_string(&manifest) else {
                panic!("missing manifest for declared crate {krate}");
            };
            let mut declared: Vec<String> = text
                .lines()
                .filter_map(|l| {
                    let name = l.split('=').next()?.trim();
                    let pkg = name.strip_prefix("newtop")?;
                    if !l.contains("workspace = true") {
                        return None;
                    }
                    Some(if pkg.is_empty() {
                        "core".to_owned()
                    } else {
                        pkg.strip_prefix('-').map(str::to_owned)?
                    })
                })
                .collect();
            declared.sort();
            declared.dedup();
            let mut table: Vec<String> = deps.iter().map(|d| (*d).to_owned()).collect();
            table.sort();
            assert_eq!(table, declared, "CRATE_DEPS out of date for {krate}");
        }
    }
}
