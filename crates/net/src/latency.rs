//! Latency models.
//!
//! A [`LatencyMatrix`] gives the one-way network latency between two
//! [`Site`]s as a base value plus uniform jitter. Two presets reproduce the
//! paper's environments:
//!
//! * [`LatencyMatrix::lan`] — every node on the Newcastle 100 Mbit LAN;
//! * [`LatencyMatrix::internet`] — Newcastle, London and Pisa connected over
//!   the Internet (nodes at the *same* WAN site still talk at LAN latency).
//!
//! The WAN constants are calibrated so that a plain synchronous ORB call
//! (request + reply, see `newtop-orb`) lands near the paper's Table 1:
//! roughly 1 ms on the LAN, and tens of milliseconds between the WAN sites,
//! with Pisa–Newcastle the slowest pair. Absolute values are not claimed —
//! the reproduction targets the *shape* of the results.

use std::collections::HashMap;
use std::time::Duration;

use rand::Rng;

use crate::site::Site;

/// A one-way latency distribution: `base + uniform(0..=jitter)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LatencySpec {
    base: Duration,
    jitter: Duration,
}

impl LatencySpec {
    /// Creates a spec with the given base latency and uniform jitter bound.
    #[must_use]
    pub const fn new(base: Duration, jitter: Duration) -> Self {
        LatencySpec { base, jitter }
    }

    /// A constant latency with no jitter.
    #[must_use]
    pub const fn constant(base: Duration) -> Self {
        LatencySpec {
            base,
            jitter: Duration::ZERO,
        }
    }

    /// The base (minimum) latency.
    #[must_use]
    pub const fn base(&self) -> Duration {
        self.base
    }

    /// The jitter bound (the maximum added on top of the base).
    #[must_use]
    pub const fn jitter(&self) -> Duration {
        self.jitter
    }

    /// Draws one latency sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        let extra = rng.gen_range(0..=self.jitter.as_nanos() as u64);
        self.base + Duration::from_nanos(extra)
    }
}

/// One-way latency between pairs of sites.
///
/// Lookups are symmetric: the latency from A to B equals the latency from
/// B to A unless both directions were set explicitly.
///
/// ```
/// use newtop_net::latency::LatencyMatrix;
/// use newtop_net::site::Site;
///
/// let m = LatencyMatrix::internet();
/// let lan = m.spec(Site::Lan, Site::Lan).base();
/// let wan = m.spec(Site::Newcastle, Site::Pisa).base();
/// assert!(wan > lan * 10);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    /// Latency between two nodes at the same site.
    local: LatencySpec,
    /// Fallback for site pairs with no explicit entry.
    default_remote: LatencySpec,
    pairs: HashMap<(Site, Site), LatencySpec>,
    /// Largest possible one-way delay (base + jitter) over every spec
    /// ever installed, maintained incrementally so no map iteration is
    /// needed at query time.
    worst_one_way: Duration,
}

impl LatencyMatrix {
    /// One-way latency between LAN peers: 180 µs ± 60 µs. With the default
    /// per-message CPU costs this yields a plain synchronous ORB call of
    /// about 1 ms, matching the paper's Table 1 LAN row.
    const LAN_SPEC: LatencySpec =
        LatencySpec::new(Duration::from_micros(180), Duration::from_micros(60));

    /// Creates a matrix where every pair of distinct sites uses
    /// `default_remote` and co-located nodes use `local`.
    #[must_use]
    pub fn uniform(local: LatencySpec, default_remote: LatencySpec) -> Self {
        let worst = (local.base + local.jitter).max(default_remote.base + default_remote.jitter);
        LatencyMatrix {
            local,
            default_remote,
            pairs: HashMap::new(),
            worst_one_way: worst,
        }
    }

    /// The paper's LAN environment: everything at LAN latency.
    #[must_use]
    pub fn lan() -> Self {
        LatencyMatrix::uniform(Self::LAN_SPEC, Self::LAN_SPEC)
    }

    /// The paper's Internet environment: Newcastle, London and Pisa.
    ///
    /// One-way base latencies: Newcastle–London 4.5 ms, London–Pisa 5.5 ms,
    /// Newcastle–Pisa 6.8 ms, each with ±25 % uniform jitter. Nodes at the
    /// same site communicate at LAN latency.
    #[must_use]
    pub fn internet() -> Self {
        let mut m = LatencyMatrix::uniform(
            Self::LAN_SPEC,
            LatencySpec::new(Duration::from_micros(5_500), Duration::from_micros(1_400)),
        );
        m.set_pair(
            Site::Newcastle,
            Site::London,
            LatencySpec::new(Duration::from_micros(4_500), Duration::from_micros(1_100)),
        );
        m.set_pair(
            Site::London,
            Site::Pisa,
            LatencySpec::new(Duration::from_micros(5_500), Duration::from_micros(1_400)),
        );
        m.set_pair(
            Site::Newcastle,
            Site::Pisa,
            LatencySpec::new(Duration::from_micros(6_800), Duration::from_micros(1_700)),
        );
        // The LAN site and Newcastle are the same physical place in the
        // paper's setup (the servers' LAN was in Newcastle).
        m.set_pair(Site::Lan, Site::Newcastle, Self::LAN_SPEC);
        m.set_pair(
            Site::Lan,
            Site::London,
            LatencySpec::new(Duration::from_micros(4_500), Duration::from_micros(1_100)),
        );
        m.set_pair(
            Site::Lan,
            Site::Pisa,
            LatencySpec::new(Duration::from_micros(6_800), Duration::from_micros(1_700)),
        );
        m
    }

    /// The sites of the synthetic five-region matrix ([`Self::global5`]),
    /// in order: us-east, us-west, eu-west, ap-south, ap-northeast.
    pub const GLOBAL5_SITES: [Site; 5] = [
        Site::Custom(0),
        Site::Custom(1),
        Site::Custom(2),
        Site::Custom(3),
        Site::Custom(4),
    ];

    /// A synthetic five-region planetary matrix — us-east, us-west,
    /// eu-west, ap-south, ap-northeast — with one-way base latencies of
    /// 15–50 ms and ±25 % uniform jitter. This deliberately stretches the
    /// paper's three-site Internet setup to the geographic spread a
    /// millions-of-users deployment would face. Co-located nodes talk at
    /// LAN latency.
    #[must_use]
    pub fn global5() -> Self {
        let wan = |base_ms: u64| {
            LatencySpec::new(
                Duration::from_millis(base_ms),
                Duration::from_micros(base_ms * 250),
            )
        };
        let [use_, usw, euw, aps, apn] = Self::GLOBAL5_SITES;
        let mut m = LatencyMatrix::uniform(Self::LAN_SPEC, wan(45));
        m.set_pair(use_, usw, wan(15));
        m.set_pair(use_, euw, wan(18));
        m.set_pair(use_, aps, wan(45));
        m.set_pair(use_, apn, wan(40));
        m.set_pair(usw, euw, wan(30));
        m.set_pair(usw, aps, wan(50));
        m.set_pair(usw, apn, wan(25));
        m.set_pair(euw, aps, wan(28));
        m.set_pair(euw, apn, wan(45));
        m.set_pair(aps, apn, wan(20));
        m
    }

    /// The sites of the synthetic three-region continental matrix
    /// ([`Self::continental3`]), in order: frankfurt, paris, warsaw.
    pub const CONTINENTAL3_SITES: [Site; 3] =
        [Site::Custom(10), Site::Custom(11), Site::Custom(12)];

    /// A synthetic three-region continental matrix — frankfurt, paris,
    /// warsaw — with one-way base latencies of 5–12 ms and ±25 % uniform
    /// jitter: a step between the paper's Internet preset and
    /// [`Self::global5`].
    #[must_use]
    pub fn continental3() -> Self {
        let wan = |base_ms: u64| {
            LatencySpec::new(
                Duration::from_millis(base_ms),
                Duration::from_micros(base_ms * 250),
            )
        };
        let [fra, par, war] = Self::CONTINENTAL3_SITES;
        let mut m = LatencyMatrix::uniform(Self::LAN_SPEC, wan(12));
        m.set_pair(fra, par, wan(5));
        m.set_pair(fra, war, wan(8));
        m.set_pair(par, war, wan(12));
        m
    }

    /// Sets the latency for a pair of sites (both directions).
    pub fn set_pair(&mut self, a: Site, b: Site, spec: LatencySpec) -> &mut Self {
        self.worst_one_way = self.worst_one_way.max(spec.base + spec.jitter);
        self.pairs.insert(key(a, b), spec);
        self
    }

    /// Sets the latency between co-located nodes.
    pub fn set_local(&mut self, spec: LatencySpec) -> &mut Self {
        self.worst_one_way = self.worst_one_way.max(spec.base + spec.jitter);
        self.local = spec;
        self
    }

    /// The largest one-way delay (base + jitter) any pair of sites can
    /// draw. Failure-detector tuning keys off this: a time-silence
    /// interval must out-wait the worst link, not the average one.
    #[must_use]
    pub fn worst_one_way(&self) -> Duration {
        self.worst_one_way
    }

    /// The latency spec for a pair of sites.
    #[must_use]
    pub fn spec(&self, a: Site, b: Site) -> LatencySpec {
        if a == b {
            return self.local;
        }
        self.pairs
            .get(&key(a, b))
            .copied()
            .unwrap_or(self.default_remote)
    }

    /// Draws one one-way latency sample between two sites.
    pub fn sample<R: Rng>(&self, a: Site, b: Site, rng: &mut R) -> Duration {
        self.spec(a, b).sample(rng)
    }
}

impl Default for LatencyMatrix {
    /// The LAN preset.
    fn default() -> Self {
        LatencyMatrix::lan()
    }
}

/// Per-link bandwidth caps, in payload bytes per second.
///
/// `None` means an uncapped link — the default everywhere, which keeps the
/// simulator's pre-bandwidth-model timings bit-identical. When a cap
/// applies, the simulator charges each frame a serialization delay of
/// `payload_len / bytes_per_sec` and queues frames FIFO per directed link
/// (see `newtop_net::sim`). Lookups are symmetric like [`LatencyMatrix`].
#[derive(Clone, Debug, Default)]
pub struct BandwidthMatrix {
    /// Cap between two nodes at the same site.
    local: Option<u64>,
    /// Fallback cap for site pairs with no explicit entry.
    default_remote: Option<u64>,
    pairs: HashMap<(Site, Site), u64>,
}

impl BandwidthMatrix {
    /// No caps anywhere (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        BandwidthMatrix::default()
    }

    /// Caps every remote (cross-site) link at `bytes_per_sec`; co-located
    /// nodes stay uncapped.
    #[must_use]
    pub fn uniform_remote(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "a zero-bandwidth link never delivers");
        BandwidthMatrix {
            local: None,
            default_remote: Some(bytes_per_sec),
            pairs: HashMap::new(),
        }
    }

    /// Caps a specific pair of sites (both directions).
    pub fn set_pair(&mut self, a: Site, b: Site, bytes_per_sec: u64) -> &mut Self {
        assert!(bytes_per_sec > 0, "a zero-bandwidth link never delivers");
        self.pairs.insert(key(a, b), bytes_per_sec);
        self
    }

    /// Caps links between co-located nodes.
    pub fn set_local(&mut self, bytes_per_sec: u64) -> &mut Self {
        assert!(bytes_per_sec > 0, "a zero-bandwidth link never delivers");
        self.local = Some(bytes_per_sec);
        self
    }

    /// The cap for a pair of sites, or `None` if the link is uncapped.
    #[must_use]
    pub fn cap(&self, a: Site, b: Site) -> Option<u64> {
        if a == b {
            return self.local;
        }
        self.pairs.get(&key(a, b)).copied().or(self.default_remote)
    }
}

fn key(a: Site, b: Site) -> (Site, Site) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_spec_has_no_jitter() {
        let spec = LatencySpec::constant(Duration::from_millis(2));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(spec.sample(&mut rng), Duration::from_millis(2));
        }
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let spec = LatencySpec::new(Duration::from_millis(1), Duration::from_millis(1));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = spec.sample(&mut rng);
            assert!(s >= Duration::from_millis(1));
            assert!(s <= Duration::from_millis(2));
        }
    }

    #[test]
    fn lookup_is_symmetric() {
        let m = LatencyMatrix::internet();
        assert_eq!(
            m.spec(Site::Newcastle, Site::Pisa),
            m.spec(Site::Pisa, Site::Newcastle)
        );
    }

    #[test]
    fn internet_preset_orders_pairs_like_the_paper() {
        // Table 1's ordering: LAN < London–Newcastle < Pisa–London < Pisa–Newcastle.
        let m = LatencyMatrix::internet();
        let lan = m.spec(Site::Lan, Site::Lan).base();
        let lon_ncl = m.spec(Site::London, Site::Newcastle).base();
        let pisa_lon = m.spec(Site::Pisa, Site::London).base();
        let pisa_ncl = m.spec(Site::Pisa, Site::Newcastle).base();
        assert!(lan < lon_ncl);
        assert!(lon_ncl < pisa_lon);
        assert!(pisa_lon < pisa_ncl);
    }

    #[test]
    fn same_wan_site_is_local() {
        let m = LatencyMatrix::internet();
        assert_eq!(m.spec(Site::Pisa, Site::Pisa), m.spec(Site::Lan, Site::Lan));
    }

    #[test]
    fn unknown_pair_falls_back_to_default() {
        let m = LatencyMatrix::internet();
        let spec = m.spec(Site::Custom(1), Site::Custom(2));
        assert_eq!(spec, m.spec(Site::Custom(3), Site::Custom(4)));
    }

    #[test]
    fn synthetic_region_presets_are_slower_than_the_paper_wan() {
        let paper = LatencyMatrix::internet();
        let global = LatencyMatrix::global5();
        let continental = LatencyMatrix::continental3();
        assert!(global.worst_one_way() > continental.worst_one_way());
        assert!(continental.worst_one_way() > paper.worst_one_way());
        // Every named region pair has an explicit entry (not the fallback
        // default), and co-located nodes still talk at LAN latency.
        let sites = LatencyMatrix::GLOBAL5_SITES;
        for (i, &a) in sites.iter().enumerate() {
            for &b in &sites[i + 1..] {
                assert!(global.spec(a, b).base() >= Duration::from_millis(15));
            }
            assert_eq!(global.spec(a, a), global.spec(Site::Lan, Site::Lan));
        }
    }

    #[test]
    fn worst_one_way_tracks_installed_specs() {
        let mut m = LatencyMatrix::lan();
        let before = m.worst_one_way();
        m.set_pair(
            Site::Custom(7),
            Site::Custom(8),
            LatencySpec::new(Duration::from_millis(90), Duration::from_millis(10)),
        );
        assert_eq!(m.worst_one_way(), Duration::from_millis(100));
        assert!(m.worst_one_way() > before);
    }

    #[test]
    fn bandwidth_matrix_lookup_and_defaults() {
        let unlimited = BandwidthMatrix::unlimited();
        assert_eq!(unlimited.cap(Site::Newcastle, Site::Pisa), None);
        assert_eq!(unlimited.cap(Site::Lan, Site::Lan), None);

        let mut m = BandwidthMatrix::uniform_remote(250_000);
        m.set_pair(Site::Newcastle, Site::Pisa, 125_000);
        assert_eq!(m.cap(Site::Pisa, Site::Newcastle), Some(125_000));
        assert_eq!(m.cap(Site::Newcastle, Site::London), Some(250_000));
        // Co-located nodes stay uncapped until set_local.
        assert_eq!(m.cap(Site::Pisa, Site::Pisa), None);
        m.set_local(12_500_000);
        assert_eq!(m.cap(Site::Pisa, Site::Pisa), Some(12_500_000));
    }
}
