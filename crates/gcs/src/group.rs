//! Group identity and configuration.
//!
//! A group is created with a [`GroupConfig`] choosing its total-order
//! technique ([`OrderProtocol`]) and its liveness regime ([`Liveness`]),
//! exactly the two customisation axes §3 of the paper exposes to
//! applications.

use std::fmt;
use std::time::Duration;

use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

/// Names a group. Members of the same group use the same id everywhere.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(String);

impl GroupId {
    /// Creates a group id from a name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        GroupId(name.into())
    }

    /// The name as a string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for GroupId {
    fn from(s: &str) -> Self {
        GroupId::new(s)
    }
}

impl From<String> for GroupId {
    fn from(s: String) -> Self {
        GroupId(s)
    }
}

impl CdrEncode for GroupId {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_string(&self.0);
    }
}

impl CdrDecode for GroupId {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(GroupId(dec.read_string()?))
    }
}

/// The delivery guarantee requested for one multicast.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DeliveryOrder {
    /// Causal order: delivered after everything that happened-before it.
    Causal,
    /// Causality-preserving total order: all members deliver in the same
    /// order, consistent with causality.
    Total,
}

impl DeliveryOrder {
    pub(crate) fn code(self) -> u8 {
        match self {
            DeliveryOrder::Causal => 0,
            DeliveryOrder::Total => 1,
        }
    }

    pub(crate) fn from_code(c: u8) -> Result<Self, CdrError> {
        match c {
            0 => Ok(DeliveryOrder::Causal),
            1 => Ok(DeliveryOrder::Total),
            other => Err(CdrError::BadDiscriminant(u32::from(other))),
        }
    }
}

/// How total order is enforced in a group (§1, §3 of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OrderProtocol {
    /// All members run a deterministic ordering algorithm over Lamport
    /// timestamps; progress requires periodic protocol messages from every
    /// member (the time-silence nulls). Best for lively peer groups.
    Symmetric,
    /// One member (the sequencer — the lowest-ranked member of the current
    /// view) decides the order. Best for request-reply style groups.
    Asymmetric,
}

/// How a multicast's per-member invocations are issued (§2.2, §5.2).
///
/// Present-day ORBs only offer one-to-one invocation, so a multicast is a
/// loop of per-member invocations. Made **synchronously** ("in turn to
/// all the members"), each invocation's round trip gates the next — the
/// paper's request-reply path. The **asynchronous** mode models the
/// deferred/oneway invocations the peer-participation experiments used
/// ("multicasting by using the asynchronous method invocation
/// operation"): invocations are issued back-to-back without waiting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FanoutMode {
    /// Sequential synchronous invocations; round trips chain.
    Synchronous,
    /// Back-to-back asynchronous invocations; only sender CPU serialises.
    Asynchronous,
}

/// Whether the time-silence and failure-suspicion machinery runs
/// permanently or only while application messages are in flight (§3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Liveness {
    /// Time-silence and suspicion active for the whole group lifetime.
    /// Appropriate for peer groups.
    Lively,
    /// Active only while undelivered application messages exist (plus a
    /// short linger); shut down when the group goes quiet. Appropriate
    /// for request-reply groups.
    EventDriven,
}

/// Per-group configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupConfig {
    /// Total-order technique.
    pub ordering: OrderProtocol,
    /// Liveness regime.
    pub liveness: Liveness,
    /// Multicast fan-out style.
    pub fanout: FanoutMode,
    /// The time-silence period: a member that has sent nothing for this
    /// long emits an "I am alive" null message (while the mechanism is
    /// active).
    pub time_silence: Duration,
    /// A member unheard-from for `time_silence * suspicion_multiple` is
    /// suspected to have failed.
    pub suspicion_multiple: u32,
    /// How long a receiver waits on a sequence gap before NACKing.
    pub nack_delay: Duration,
    /// How long a view-change coordinator waits for state responses (and
    /// participants wait for the install) before escalating.
    pub view_change_timeout: Duration,
    /// Credit-based send window: the most multicasts a member may have
    /// outstanding (sent this view but unacknowledged by some member)
    /// before further sends are shed with `GcsError::Overloaded`.
    pub flow_window: u64,
    /// The most multicasts buffered while a view agreement is in flight;
    /// beyond this the send is shed instead of queued.
    pub max_queued_multicasts: u32,
}

impl GroupConfig {
    /// A request-reply flavoured configuration: asymmetric ordering,
    /// event-driven liveness.
    #[must_use]
    pub fn request_reply() -> Self {
        GroupConfig {
            ordering: OrderProtocol::Asymmetric,
            liveness: Liveness::EventDriven,
            ..GroupConfig::default()
        }
    }

    /// A peer-group flavoured configuration: symmetric ordering, lively.
    #[must_use]
    pub fn peer() -> Self {
        GroupConfig {
            ordering: OrderProtocol::Symmetric,
            liveness: Liveness::Lively,
            fanout: FanoutMode::Asynchronous,
            ..GroupConfig::default()
        }
    }

    /// Sets the ordering protocol.
    #[must_use]
    pub fn with_ordering(mut self, ordering: OrderProtocol) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the liveness regime.
    #[must_use]
    pub fn with_liveness(mut self, liveness: Liveness) -> Self {
        self.liveness = liveness;
        self
    }

    /// Sets the time-silence period.
    #[must_use]
    pub fn with_time_silence(mut self, period: Duration) -> Self {
        self.time_silence = period;
        self
    }

    /// Sets the credit-based send window.
    #[must_use]
    pub fn with_flow_window(mut self, window: u64) -> Self {
        self.flow_window = window;
        self
    }

    /// The suspicion timeout implied by the configuration.
    #[must_use]
    pub fn suspicion_timeout(&self) -> Duration {
        self.time_silence * self.suspicion_multiple
    }

    /// The smallest time-silence period at which this configuration's
    /// failure detector is safe on a network whose worst one-way delay
    /// (base latency + jitter + any expected transient spike) is
    /// `worst_one_way`.
    ///
    /// A peer observes consecutive heartbeats up to
    /// `time_silence + 2·worst_one_way` apart (one heartbeat maximally
    /// delayed, the previous one not). Doubling that gap as slack for
    /// queueing behind real traffic and requiring the suspicion timeout
    /// to cover it — `m·ts ≥ 2·(ts + 2·D)` — solves to
    /// `ts ≥ 4·D / (m − 2)`. See DESIGN.md §11 for the derivation and
    /// the false-suspicion-storm regression that pins it.
    ///
    /// # Panics
    ///
    /// Panics if `suspicion_multiple ≤ 2`: such a detector cannot be
    /// made safe by any time-silence period.
    #[must_use]
    pub fn recommended_time_silence(&self, worst_one_way: Duration) -> Duration {
        assert!(
            self.suspicion_multiple > 2,
            "a suspicion multiple of {} leaves no safe time-silence period",
            self.suspicion_multiple
        );
        let denom = u128::from(self.suspicion_multiple) - 2;
        let nanos = worst_one_way.as_nanos().saturating_mul(4).div_ceil(denom);
        Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64).max(Duration::from_millis(1))
    }
}

impl CdrEncode for GroupConfig {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_u8(match self.ordering {
            OrderProtocol::Symmetric => 0,
            OrderProtocol::Asymmetric => 1,
        });
        enc.write_u8(match self.liveness {
            Liveness::Lively => 0,
            Liveness::EventDriven => 1,
        });
        enc.write_u8(match self.fanout {
            FanoutMode::Synchronous => 0,
            FanoutMode::Asynchronous => 1,
        });
        enc.write_u64(self.time_silence.as_micros() as u64);
        enc.write_u32(self.suspicion_multiple);
        enc.write_u64(self.nack_delay.as_micros() as u64);
        enc.write_u64(self.view_change_timeout.as_micros() as u64);
        enc.write_u64(self.flow_window);
        enc.write_u32(self.max_queued_multicasts);
    }
}

impl CdrDecode for GroupConfig {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let ordering = match dec.read_u8()? {
            0 => OrderProtocol::Symmetric,
            1 => OrderProtocol::Asymmetric,
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        };
        let liveness = match dec.read_u8()? {
            0 => Liveness::Lively,
            1 => Liveness::EventDriven,
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        };
        let fanout = match dec.read_u8()? {
            0 => FanoutMode::Synchronous,
            1 => FanoutMode::Asynchronous,
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        };
        Ok(GroupConfig {
            ordering,
            liveness,
            fanout,
            time_silence: Duration::from_micros(dec.read_u64()?),
            suspicion_multiple: dec.read_u32()?,
            nack_delay: Duration::from_micros(dec.read_u64()?),
            view_change_timeout: Duration::from_micros(dec.read_u64()?),
            flow_window: dec.read_u64()?,
            max_queued_multicasts: dec.read_u32()?,
        })
    }
}

impl Default for GroupConfig {
    /// Asymmetric, event-driven, 25 ms time-silence, 14× suspicion (a
    /// loaded member's heartbeats queue behind its traffic; suspicion must
    /// tolerate that), 10 ms NACK delay, 150 ms view-change timeout.
    fn default() -> Self {
        GroupConfig {
            ordering: OrderProtocol::Asymmetric,
            liveness: Liveness::EventDriven,
            fanout: FanoutMode::Synchronous,
            time_silence: Duration::from_millis(25),
            suspicion_multiple: 14,
            nack_delay: Duration::from_millis(10),
            view_change_timeout: Duration::from_millis(150),
            flow_window: 64,
            max_queued_multicasts: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_id_round_trips_via_cdr() {
        let g = GroupId::new("servers");
        let b = g.to_cdr();
        assert_eq!(GroupId::from_cdr(&b).unwrap(), g);
        assert_eq!(g.to_string(), "servers");
    }

    #[test]
    fn delivery_order_codes_round_trip() {
        for o in [DeliveryOrder::Causal, DeliveryOrder::Total] {
            assert_eq!(DeliveryOrder::from_code(o.code()).unwrap(), o);
        }
        assert!(DeliveryOrder::from_code(9).is_err());
    }

    #[test]
    fn group_config_round_trips_via_cdr() {
        for cfg in [
            GroupConfig::default(),
            GroupConfig::peer().with_flow_window(7),
            GroupConfig::request_reply().with_time_silence(Duration::from_millis(3)),
        ] {
            let b = cfg.to_cdr();
            assert_eq!(GroupConfig::from_cdr(&b).unwrap(), cfg);
        }
        // A bad ordering discriminant is rejected, not defaulted.
        let mut b = GroupConfig::default().to_cdr().to_vec();
        b[0] = 9;
        assert!(matches!(
            GroupConfig::from_cdr(&b),
            Err(CdrError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn presets_match_the_paper() {
        let rr = GroupConfig::request_reply();
        assert_eq!(rr.ordering, OrderProtocol::Asymmetric);
        assert_eq!(rr.liveness, Liveness::EventDriven);
        let peer = GroupConfig::peer();
        assert_eq!(peer.ordering, OrderProtocol::Symmetric);
        assert_eq!(peer.liveness, Liveness::Lively);
    }

    #[test]
    fn builder_methods_compose() {
        let c = GroupConfig::default()
            .with_ordering(OrderProtocol::Symmetric)
            .with_liveness(Liveness::Lively)
            .with_time_silence(Duration::from_millis(10));
        assert_eq!(c.ordering, OrderProtocol::Symmetric);
        assert_eq!(c.suspicion_timeout(), Duration::from_millis(140));
    }

    #[test]
    fn recommended_time_silence_satisfies_the_tuning_rule() {
        let c = GroupConfig::default(); // suspicion_multiple = 14
        for worst_ms in [1u64, 12, 47, 120, 500] {
            let d = Duration::from_millis(worst_ms);
            let ts = c.recommended_time_silence(d);
            let tuned = GroupConfig::default().with_time_silence(ts);
            // m·ts ≥ 2·(ts + 2·D): the timeout covers twice the
            // worst observable heartbeat gap.
            assert!(
                tuned.suspicion_timeout() >= (ts + d * 2) * 2,
                "rule violated at D={worst_ms}ms: ts={ts:?}"
            );
        }
        // A sub-millisecond answer is floored at 1 ms.
        assert_eq!(
            c.recommended_time_silence(Duration::from_micros(10)),
            Duration::from_millis(1)
        );
    }
}
