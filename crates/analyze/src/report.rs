//! Structured findings report: stable IDs, the `--json` writer, and the
//! baseline diff gate.
//!
//! The allowlist (`analyze.allow`) is a *pressure valve*: ten justified
//! exceptions, reviewed by hand. The baseline
//! (`analyze.baseline.json`) is a *ratchet*: the committed set of
//! finding IDs the tree is known to carry (kept empty of protocol-crate
//! findings by policy). `check.sh` diffs the current report against it —
//! a finding not in the baseline fails CI (you introduced it), a
//! baseline ID no longer produced also fails (you fixed it; regenerate
//! with `--write-baseline` so the ratchet clicks forward).
//!
//! IDs are `rule:file:fn:kind`, deliberately *without* line numbers so
//! unrelated edits don't churn the baseline; when one function carries
//! several findings of one kind, later ones (in line order) get a `#2`,
//! `#3`… suffix.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stable IDs for `findings`, parallel to the slice. `findings` must be
/// sorted (as [`crate::rules::run_all`] returns them) so suffix
/// numbering is deterministic.
#[must_use]
pub fn finding_ids(findings: &[Finding]) -> Vec<String> {
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let base = format!("{}:{}:{}:{}", f.rule, f.file, f.func, f.kind);
            let n = counts.entry(base.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base}#{n}")
            }
        })
        .collect()
}

/// Serializes findings and warnings as the JSON report. Hand-rolled —
/// the vendored workspace has no serde — matching the writer style the
/// loadgen/scale harnesses already use.
#[must_use]
pub fn to_json(findings: &[Finding], warnings: &[String]) -> String {
    let ids = finding_ids(findings);
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, (f, id)) in findings.iter().zip(&ids).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"rule\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \"line\": {}, \"fn\": \"{}\", \"message\": \"{}\"}}",
            esc(id),
            esc(f.rule),
            esc(f.kind),
            esc(&f.file),
            f.line,
            esc(&f.func),
            esc(&f.message)
        );
    }
    if findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"warnings\": [");
    for (i, w) in warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\"", esc(w));
    }
    if warnings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts the `"id"` values from a baseline JSON report. A minimal
/// scanner, not a JSON parser: it only ever reads files this module
/// wrote (`--write-baseline`), whose shape is fixed. Returns IDs in file
/// order.
#[must_use]
pub fn baseline_ids(json: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"id\":") {
        rest = &rest[pos + 5..];
        let Some(open) = rest.find('"') else { break };
        rest = &rest[open + 1..];
        let mut id = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = rest.len();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    consumed = i + 1;
                    break;
                }
                '\\' => {
                    if let Some((_, e)) = chars.next() {
                        id.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                }
                c => id.push(c),
            }
        }
        rest = &rest[consumed..];
        ids.push(id);
    }
    ids
}

/// The baseline diff: findings the baseline does not know (fail: you
/// introduced them) and baseline entries no longer produced (fail: the
/// baseline is stale; regenerate it).
#[must_use]
pub fn diff(current: &[String], baseline: &[String]) -> (Vec<String>, Vec<String>) {
    let cur: std::collections::BTreeSet<&str> = current.iter().map(String::as_str).collect();
    let base: std::collections::BTreeSet<&str> = baseline.iter().map(String::as_str).collect();
    let new = current
        .iter()
        .filter(|id| !base.contains(id.as_str()))
        .cloned()
        .collect();
    let fixed = baseline
        .iter()
        .filter(|id| !cur.contains(id.as_str()))
        .cloned()
        .collect();
    (new, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, func: &str, kind: &'static str, line: u32) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            rule,
            func: func.to_owned(),
            kind,
            message: "msg with \"quotes\" and \\ backslash".to_owned(),
        }
    }

    #[test]
    fn ids_are_stable_across_line_changes() {
        let a = finding_ids(&[f("panic-free", "crates/gcs/src/a.rs", "go", "unwrap", 10)]);
        let b = finding_ids(&[f("panic-free", "crates/gcs/src/a.rs", "go", "unwrap", 99)]);
        assert_eq!(a, b);
        assert_eq!(a[0], "panic-free:crates/gcs/src/a.rs:go:unwrap");
    }

    #[test]
    fn duplicate_tuples_get_ordinal_suffixes() {
        let ids = finding_ids(&[
            f("panic-free", "crates/gcs/src/a.rs", "go", "unwrap", 10),
            f("panic-free", "crates/gcs/src/a.rs", "go", "unwrap", 20),
        ]);
        assert_eq!(ids[0], "panic-free:crates/gcs/src/a.rs:go:unwrap");
        assert_eq!(ids[1], "panic-free:crates/gcs/src/a.rs:go:unwrap#2");
    }

    #[test]
    fn json_roundtrips_through_baseline_scanner() {
        let findings = vec![
            f("panic-free", "crates/gcs/src/a.rs", "go", "unwrap", 10),
            f("lock-order", "crates/net/src/tcp.rs", "send", "cycle", 5),
        ];
        let json = to_json(&findings, &["1 macro body skipped".to_owned()]);
        let ids = baseline_ids(&json);
        assert_eq!(ids, finding_ids(&findings));
    }

    #[test]
    fn empty_report_is_valid_and_idless() {
        let json = to_json(&[], &[]);
        assert!(json.contains("\"findings\": []"));
        assert!(baseline_ids(&json).is_empty());
    }

    #[test]
    fn diff_separates_new_from_fixed() {
        let cur = vec!["a".to_owned(), "b".to_owned()];
        let base = vec!["b".to_owned(), "c".to_owned()];
        let (new, fixed) = diff(&cur, &base);
        assert_eq!(new, ["a"]);
        assert_eq!(fixed, ["c"]);
    }
}
