/root/repo/target/debug/deps/observability-ab56b448d3e2ecab.d: tests/tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-ab56b448d3e2ecab.rmeta: tests/tests/observability.rs Cargo.toml

tests/tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
