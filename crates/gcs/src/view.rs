//! Membership views.
//!
//! A [`View`] is one epoch of a group's membership. View installations are
//! atomic with respect to message delivery (virtual synchrony): every
//! member surviving from view *v* to view *v+1* delivers the same set of
//! messages in *v* before installing *v+1*.

use std::fmt;

use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

use crate::group::GroupId;

/// Identifies a view within a group; monotonically increasing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId(pub u64);

impl ViewId {
    /// The view id following this one.
    #[must_use]
    pub fn next(self) -> ViewId {
        ViewId(self.0 + 1)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl CdrEncode for ViewId {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_u64(self.0);
    }
}

impl CdrDecode for ViewId {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(ViewId(dec.read_u64()?))
    }
}

/// Canonicalises a member list: sorted ascending, duplicates removed.
/// The single definition shared by [`View::new`] and the delivery
/// engine's [`crate::engine::EngineConfig`], so the two can never drift.
#[must_use]
pub fn canonical_members(mut members: Vec<NodeId>) -> Vec<NodeId> {
    members.sort_unstable();
    members.dedup();
    members
}

/// One epoch of a group's membership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    group: GroupId,
    id: ViewId,
    /// Sorted, deduplicated member list.
    members: Vec<NodeId>,
}

impl View {
    /// Creates a view; the member list is sorted and deduplicated.
    #[must_use]
    pub fn new(group: GroupId, id: ViewId, members: Vec<NodeId>) -> Self {
        View {
            group,
            id,
            members: canonical_members(members),
        }
    }

    /// The group this view belongs to.
    #[must_use]
    pub fn group(&self) -> &GroupId {
        &self.group
    }

    /// The view id.
    #[must_use]
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// The members, sorted by node id.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for a (degenerate) empty view.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` belongs to this view.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The member's rank (position in the sorted member list).
    #[must_use]
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// The sequencer of this view under the asymmetric protocol: the
    /// lowest-ranked member. Deterministic, so electing a replacement
    /// after a view change needs no extra protocol (§3).
    #[must_use]
    pub fn sequencer(&self) -> Option<NodeId> {
        self.members.first().copied()
    }

    /// The number of members forming a majority of this view.
    #[must_use]
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Members of this view absent from `other`.
    #[must_use]
    pub fn members_not_in(&self, other: &View) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|m| !other.contains(*m))
            .collect()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}{:?}", self.group, self.id, self.members)
    }
}

impl CdrEncode for View {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.group.encode(enc);
        self.id.encode(enc);
        enc.write_seq_len(self.members.len());
        for m in &self.members {
            enc.write_u32(m.index());
        }
    }
}

impl CdrDecode for View {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let group = GroupId::decode(dec)?;
        let id = ViewId::decode(dec)?;
        let len = dec.read_seq_len()?;
        let mut members = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            members.push(NodeId::from_index(dec.read_u32()?));
        }
        Ok(View::new(group, id, members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn view(ids: &[u32]) -> View {
        View::new(
            GroupId::new("g"),
            ViewId(1),
            ids.iter().map(|&i| n(i)).collect(),
        )
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let v = view(&[3, 1, 2, 1]);
        assert_eq!(v.members(), &[n(1), n(2), n(3)]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn rank_and_contains() {
        let v = view(&[5, 9, 7]);
        assert!(v.contains(n(7)));
        assert!(!v.contains(n(6)));
        assert_eq!(v.rank_of(n(5)), Some(0));
        assert_eq!(v.rank_of(n(9)), Some(2));
        assert_eq!(v.rank_of(n(6)), None);
    }

    #[test]
    fn sequencer_is_lowest_member() {
        assert_eq!(view(&[4, 2, 8]).sequencer(), Some(n(2)));
        assert_eq!(view(&[]).sequencer(), None);
    }

    #[test]
    fn majority_sizes() {
        assert_eq!(view(&[1]).majority(), 1);
        assert_eq!(view(&[1, 2]).majority(), 2);
        assert_eq!(view(&[1, 2, 3]).majority(), 2);
        assert_eq!(view(&[1, 2, 3, 4]).majority(), 3);
        assert_eq!(view(&[1, 2, 3, 4, 5]).majority(), 3);
    }

    #[test]
    fn departed_members_are_computed() {
        let old = view(&[1, 2, 3]);
        let new = view(&[2, 3, 4]);
        assert_eq!(old.members_not_in(&new), vec![n(1)]);
        assert_eq!(new.members_not_in(&old), vec![n(4)]);
    }

    #[test]
    fn cdr_round_trip() {
        let v = view(&[10, 20]);
        assert_eq!(View::from_cdr(&v.to_cdr()).unwrap(), v);
    }

    #[test]
    fn view_id_ordering() {
        assert!(ViewId(1) < ViewId(2));
        assert_eq!(ViewId(1).next(), ViewId(2));
        assert_eq!(ViewId(7).to_string(), "v7");
    }
}
