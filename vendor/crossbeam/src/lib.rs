//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the channel subset this workspace uses on top of
//! `std::sync::mpsc`: cloneable senders *and* receivers (the receiver is
//! shared behind a mutex), `unbounded`/`bounded` constructors, and a
//! polling [`select!`] macro supporting `recv(..) -> ..` arms with a
//! `default(timeout)` arm.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of a channel. Cloneable: clones share the same
    /// queue, each message going to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout)
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Polls once for the [`select!`] macro: `Some(Ok(v))` on a
        /// message, `Some(Err(_))` on disconnect, `None` when empty.
        #[doc(hidden)]
        pub fn poll_for_select(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }

        /// The deadline helper used by the [`select!`] macro.
        #[doc(hidden)]
        #[must_use]
        pub fn select_deadline(timeout: Duration) -> Instant {
            Instant::now() + timeout
        }
    }

    /// Creates a channel with unbounded capacity.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a bounded channel. The stand-in does not enforce the
    /// capacity for senders (std's sync_channel would block differently
    /// from crossbeam for zero capacity); the workspace only uses small
    /// rendezvous buffers where unbounded behaviour is indistinguishable.
    #[must_use]
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// A polling select over channel receive operations.
    ///
    /// Supports the shape this workspace uses:
    ///
    /// ```ignore
    /// select! {
    ///     recv(rx_a) -> msg => { ... }
    ///     recv(rx_b) -> msg => { ... }
    ///     default(timeout) => { ... }
    /// }
    /// ```
    ///
    /// Receivers are polled in order with a short sleep between rounds
    /// until one is ready or the timeout elapses.
    #[macro_export]
    macro_rules! select {
        (
            $(recv($rx:expr) -> $res:pat => $body:block)+
            default($timeout:expr) => $def:block
        ) => {{
            let deadline = ::std::time::Instant::now() + $timeout;
            'select: loop {
                $(
                    if let ::std::option::Option::Some(polled) = $rx.poll_for_select() {
                        let $res = polled;
                        // The arm body may diverge (e.g. `return`), making
                        // the break unreachable in some expansions.
                        #[allow(unreachable_code)]
                        {
                            { $body }
                            break 'select;
                        }
                    }
                )+
                if ::std::time::Instant::now() >= deadline {
                    { $def }
                    break 'select;
                }
                ::std::thread::sleep(::std::time::Duration::from_micros(200));
            }
        }};
    }

    pub use crate::select;
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};
    use std::time::Duration;

    #[test]
    fn send_recv_and_select() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        let (tx2, rx2) = bounded(1);
        tx2.send("x").unwrap();
        let mut got = None;
        crate::select! {
            recv(rx) -> _v => { unreachable!() }
            recv(rx2) -> v => { got = v.ok(); }
            default(Duration::from_millis(10)) => {}
        }
        assert_eq!(got, Some("x"));
        let mut timed_out = false;
        crate::select! {
            recv(rx) -> _v => {}
            default(Duration::from_millis(5)) => { timed_out = true; }
        }
        assert!(timed_out);
    }
}
