/root/repo/target/debug/deps/churn-19c6fcc03322e027.d: tests/tests/churn.rs

/root/repo/target/debug/deps/churn-19c6fcc03322e027: tests/tests/churn.rs

tests/tests/churn.rs:
