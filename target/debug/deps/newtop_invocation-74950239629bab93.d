/root/repo/target/debug/deps/newtop_invocation-74950239629bab93.d: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

/root/repo/target/debug/deps/libnewtop_invocation-74950239629bab93.rlib: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

/root/repo/target/debug/deps/libnewtop_invocation-74950239629bab93.rmeta: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

crates/invocation/src/lib.rs:
crates/invocation/src/api.rs:
crates/invocation/src/client.rs:
crates/invocation/src/g2g.rs:
crates/invocation/src/server.rs:
