/root/repo/target/debug/deps/group_to_group-aac4f9fb7d53932e.d: examples/src/bin/group_to_group.rs Cargo.toml

/root/repo/target/debug/deps/libgroup_to_group-aac4f9fb7d53932e.rmeta: examples/src/bin/group_to_group.rs Cargo.toml

examples/src/bin/group_to_group.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
