//! # NewTop — a flexible object group service
//!
//! A from-scratch reproduction of the system described in G. Morgan and
//! S.K. Shrivastava, *"Implementing Flexible Object Group Invocation in
//! Networked Systems"* (DSN 2000): a CORBA-style object group service
//! supporting three modes of interaction —
//!
//! 1. **request-reply** between a client and a replicated service, with
//!    **closed** (client multicasts to all replicas; best on a LAN) and
//!    **open** (client talks to one *request manager*; best over a WAN)
//!    client/server groups;
//! 2. **group-to-group request-reply**;
//! 3. **peer participation** (everyone multicasts; e.g. conferencing) —
//!
//! with per-group choice of **symmetric** or **asymmetric** total-order
//! protocol and four reply-collection primitives (one-way, first,
//! majority, all).
//!
//! The central type is the [`Nso`] — the NewTop service object. One NSO
//! runs next to each application object (the paper's recommended
//! colocated configuration) and multiplexes every group its node belongs
//! to. It is a sans-IO state machine: runtimes deliver packets and timers
//! to it and apply the actions it queues. Two runtimes are provided:
//! the deterministic simulator ([`simnode::NsoNode`], over
//! `newtop_net::sim`) used by tests and experiments, and the threaded
//! runtime in the `newtop-rt` crate used by the runnable examples.
//!
//! # Quickstart (simulated)
//!
//! ```
//! use newtop::simnode::{NsoNode, NsoApp};
//! use newtop::{Nso, NsoOutput, BindOptions};
//! use newtop_gcs::group::GroupId;
//! use newtop_invocation::api::{Replication, OpenOptimisation, ReplyMode};
//! use newtop_net::sim::{Sim, SimConfig, Outbox};
//! use newtop_net::site::{NodeId, Site};
//! use newtop_net::time::SimTime;
//! use bytes::Bytes;
//!
//! // A server application: registers a servant that doubles a byte.
//! struct Server { group_members: Vec<NodeId> }
//! impl NsoApp for Server {
//!     fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
//!         nso.create_server_group(
//!             GroupId::new("doubler"), self.group_members.clone(),
//!             Replication::Active, OpenOptimisation::None,
//!             Default::default(), now, out,
//!         ).unwrap();
//!         nso.register_group_servant(GroupId::new("doubler"),
//!             Box::new(|_op: &str, args: &[u8]| Bytes::from(vec![args[0] * 2])));
//!     }
//!     fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
//! }
//!
//! // A client: binds (closed) to the service, invokes, checks the answer.
//! struct Client { servers: Vec<NodeId>, answer: Option<u8> }
//! impl NsoApp for Client {
//!     fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
//!         nso.bind(GroupId::new("doubler"),
//!                  BindOptions::closed(self.servers.clone()), now, out).unwrap();
//!     }
//!     fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
//!         match output {
//!             NsoOutput::BindingReady { group } => {
//!                 // Readiness is asynchronous: recover the handle and invoke over it.
//!                 let binding = nso.handle_for(&group).unwrap();
//!                 binding.invoke(nso, "double", Bytes::from_static(&[21]), ReplyMode::All, now, out).unwrap();
//!             }
//!             NsoOutput::InvocationComplete { replies, .. } => {
//!                 self.answer = Some(replies[0].1[0]);
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let s0 = NodeId::from_index(0);
//! let s1 = NodeId::from_index(1);
//! let members = vec![s0, s1];
//! sim.add_node(Site::Lan, Box::new(NsoNode::new(s0, Box::new(Server { group_members: members.clone() }))));
//! sim.add_node(Site::Lan, Box::new(NsoNode::new(s1, Box::new(Server { group_members: members.clone() }))));
//! let c = NodeId::from_index(2);
//! sim.add_node(Site::Lan, Box::new(NsoNode::new(c, Box::new(Client { servers: members, answer: None }))));
//! sim.run_until(SimTime::from_secs(5));
//! let client: &NsoNode = sim.node_ref(c).unwrap();
//! assert_eq!(client.app_ref::<Client>().unwrap().answer, Some(42));
//! // Every node keeps protocol metrics and a trace; dump the client's:
//! let snap = client.nso().metrics();
//! assert_eq!(snap.counter("inv.calls_issued"), 1);
//! println!("{snap}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod control;
pub mod directory;
pub mod nso;
pub mod proxy;
pub mod simnode;

pub use nso::{
    BindOptions, BindTarget, GroupHandle, GroupServant, NewtopError, Nso, NsoOptions, NsoOutput,
};
pub use proxy::{ProxyEvent, ProxyStyle, SmartProxy};

/// The ORB operation carrying binding-control requests between NSOs.
pub const INV_CTRL_OPERATION: &str = "inv-ctrl";

/// Timer-tag bases partitioning one node's tag space between components.
pub mod tags {
    /// Tags owned by the group communication service.
    pub const GCS_BASE: u64 = 1 << 40;
    /// Tags owned by the NSO itself (binding timeouts).
    pub const NSO_BASE: u64 = 2 << 40;
    /// Tags available to the application layer.
    pub const APP_BASE: u64 = 3 << 40;
}
