//! The smart proxy: automatic binding, rebinding and retry.
//!
//! §2.1 of the paper: "a client application can be provided with a smart
//! proxy for the server that automatically does the rebinding as
//! suggested here", and §4.1's retry discipline (same call number,
//! servers deduplicate from their retained last reply). A [`SmartProxy`]
//! packages that policy so applications just call
//! [`SmartProxy::invoke`] and feed it the NSO's outputs:
//!
//! * it binds on start (open or closed, per [`ProxyStyle`]);
//! * calls made before the binding is ready are queued;
//! * on a broken binding it rebinds to the next replica and retries every
//!   outstanding call with its original number;
//! * calls stalled longer than the retry interval are re-issued (lost
//!   requests — e.g. one caught in a view-change window — are recovered);
//! * after exhausting every replica [`ProxyEvent::GaveUp`] is reported.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use newtop_gcs::group::GroupId;
use newtop_invocation::api::{CallId, ReplyMode};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;

use crate::nso::{BindOptions, BindTarget, GroupHandle, Nso, NsoOutput};
use crate::tags;

/// How the proxy attaches to the service.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProxyStyle {
    /// A closed client/server group with every replica (LAN-friendly;
    /// failures are masked without rebinding).
    Closed,
    /// Open bindings, one replica at a time (WAN-friendly; the proxy
    /// rebinds on failure). `restricted` starts from the designated
    /// manager (the lowest-ranked replica) instead of the first listed.
    Open {
        /// Bind to the designated manager first (§4.2's restricted
        /// group).
        restricted: bool,
    },
}

/// Things the proxy reports to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProxyEvent {
    /// The first binding is up; queued calls have been issued.
    Ready,
    /// A call completed.
    Complete {
        /// The proxy-level call number (as returned by
        /// [`SmartProxy::invoke`]).
        number: u64,
        /// `(server, result)` pairs.
        replies: Vec<(NodeId, Bytes)>,
    },
    /// The proxy rebound to another replica (diagnostic).
    Rebound {
        /// The replica now acting as request manager.
        manager: NodeId,
    },
    /// Every replica has been tried without success.
    GaveUp,
}

#[derive(Clone, Debug)]
struct QueuedCall {
    op: String,
    args: Bytes,
    mode: ReplyMode,
}

#[derive(Clone, Debug)]
enum State {
    Unbound,
    Binding,
    Bound(GroupHandle),
    Failed,
}

/// Automatic bind/rebind/retry for one replicated service. See the
/// [module docs](self).
#[derive(Debug)]
pub struct SmartProxy {
    server_group: GroupId,
    servers: Vec<NodeId>,
    style: ProxyStyle,
    opts: BindOptions,
    retry_interval: Duration,
    state: State,
    manager_index: usize,
    failures_in_a_row: usize,
    /// Calls not yet issued (no binding yet).
    queued: Vec<(u64, QueuedCall)>,
    /// Issued and awaiting completion: the NSO core's call number →
    /// (proxy number, issue time, the call for re-issue).
    outstanding: BTreeMap<u64, (u64, SimTime, QueuedCall)>,
    next_number: u64,
    ticker_armed: bool,
}

impl SmartProxy {
    /// Creates a proxy for `server_group`, whose replicas are `servers`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    #[must_use]
    pub fn new(
        server_group: GroupId,
        servers: Vec<NodeId>,
        style: ProxyStyle,
        opts: BindOptions,
    ) -> Self {
        assert!(!servers.is_empty(), "a service needs at least one replica");
        let mut servers = servers;
        if matches!(style, ProxyStyle::Open { restricted: true }) {
            servers.sort_unstable(); // designated manager first
        }
        SmartProxy {
            server_group,
            servers,
            style,
            opts,
            retry_interval: Duration::from_millis(200),
            state: State::Unbound,
            manager_index: 0,
            failures_in_a_row: 0,
            queued: Vec::new(),
            outstanding: BTreeMap::new(),
            next_number: 1,
            ticker_armed: false,
        }
    }

    /// Overrides the stalled-call retry interval (default 200 ms).
    #[must_use]
    pub fn with_retry_interval(mut self, interval: Duration) -> Self {
        self.retry_interval = interval;
        self
    }

    /// The timer tag the proxy uses for its retry ticker. Route this tag
    /// from `NsoApp::on_timer` into [`SmartProxy::on_timer`].
    pub const TICKER_TAG: u64 = tags::APP_BASE + 0x5A17;

    /// Starts the first binding. Call once (e.g. from `on_start`).
    pub fn start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        self.bind(nso, now, out);
        if !self.ticker_armed {
            self.ticker_armed = true;
            out.set_timer(self.retry_interval, Self::TICKER_TAG);
        }
    }

    /// Invokes an operation; returns the proxy-level call number matched
    /// by the eventual [`ProxyEvent::Complete`]. Queued until the binding
    /// is ready.
    pub fn invoke(
        &mut self,
        nso: &mut Nso,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        now: SimTime,
        out: &mut Outbox,
    ) -> u64 {
        let number = self.next_number;
        self.next_number += 1;
        let call = QueuedCall {
            op: op.to_owned(),
            args,
            mode,
        };
        match self.state.clone() {
            State::Bound(binding) => {
                self.issue(nso, &binding, number, &call, now, out);
            }
            _ => self.queued.push((number, call)),
        }
        number
    }

    /// Number of calls issued or queued but not yet complete.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.outstanding.len() + self.queued.len()
    }

    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        self.state = State::Binding;
        let target = match self.style {
            ProxyStyle::Closed => BindTarget::Closed {
                servers: self.servers.clone(),
            },
            ProxyStyle::Open { .. } => BindTarget::Open {
                manager: self.servers[self.manager_index % self.servers.len()],
            },
        };
        let opts = BindOptions {
            target,
            ..self.opts.clone()
        };
        if nso.bind(self.server_group.clone(), opts, now, out).is_err() {
            self.state = State::Failed;
        }
    }

    fn issue(
        &mut self,
        nso: &mut Nso,
        binding: &GroupHandle,
        number: u64,
        call: &QueuedCall,
        now: SimTime,
        out: &mut Outbox,
    ) {
        // The NSO's client core allocates its own call numbers; the proxy
        // maps them back to its own. (`invoke` only fails if the binding
        // raced away — the call is then re-queued.)
        match binding.invoke(nso, &call.op, call.args.clone(), call.mode, now, out) {
            Ok(id) => {
                self.outstanding
                    .insert(id.number, (number, now, call.clone()));
            }
            Err(_) => self.queued.push((number, call.clone())),
        }
    }

    /// Feeds one NSO output. Returns an event when the output concerned
    /// this proxy.
    pub fn on_output(
        &mut self,
        nso: &mut Nso,
        output: &NsoOutput,
        now: SimTime,
        out: &mut Outbox,
    ) -> Option<ProxyEvent> {
        match output {
            NsoOutput::BindingReady { group } => {
                if !matches!(self.state, State::Binding) {
                    return None;
                }
                let binding = nso.handle_for(group)?;
                self.state = State::Bound(binding.clone());
                self.failures_in_a_row = 0;
                // Retry outstanding calls (original core numbers, so
                // servers deduplicate), then flush the queue.
                let mut numbers: Vec<u64> = self.outstanding.keys().copied().collect();
                numbers.sort_unstable();
                for number in numbers {
                    if binding.retry(nso, number, now, out).is_err() {
                        // The core dropped the call (shouldn't happen);
                        // fall back to re-issuing it fresh.
                        if let Some((pn, _, call)) = self.outstanding.remove(&number) {
                            self.queued.push((pn, call));
                        }
                    }
                }
                let queued = std::mem::take(&mut self.queued);
                for (number, call) in queued {
                    self.issue(nso, &binding, number, &call, now, out);
                }
                Some(ProxyEvent::Ready)
            }
            NsoOutput::BindFailed { .. } | NsoOutput::BindingBroken { .. } => {
                if matches!(self.state, State::Failed) {
                    return None;
                }
                self.failures_in_a_row += 1;
                if self.failures_in_a_row >= self.servers.len().max(2) * 2 {
                    self.state = State::Failed;
                    return Some(ProxyEvent::GaveUp);
                }
                self.manager_index += 1;
                let manager = self.servers[self.manager_index % self.servers.len()];
                self.bind(nso, now, out);
                Some(ProxyEvent::Rebound { manager })
            }
            NsoOutput::InvocationComplete { call, replies } => {
                let (proxy_number, _, _) = self.outstanding.remove(&call.number)?;
                Some(ProxyEvent::Complete {
                    number: proxy_number,
                    replies: replies.clone(),
                })
            }
            _ => None,
        }
    }

    /// Feeds a fired timer. Route [`SmartProxy::TICKER_TAG`] here.
    pub fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag != Self::TICKER_TAG {
            return;
        }
        if let State::Bound(binding) = self.state.clone() {
            let stalled: Vec<u64> = self
                .outstanding
                .iter()
                .filter(|(_, (_, at, _))| now.saturating_since(*at) > self.retry_interval)
                .map(|(&n, _)| n)
                .collect();
            for number in stalled {
                let _ = binding.retry(nso, number, now, out);
                if let Some(entry) = self.outstanding.get_mut(&number) {
                    entry.1 = now;
                }
            }
        }
        out.set_timer(self.retry_interval, Self::TICKER_TAG);
    }
}

/// Identifies the completed call when matching manually against
/// [`CallId`]s from the NSO layer.
#[must_use]
pub fn call_number(call: &CallId) -> u64 {
    call.number
}
