//! Node identity and geographic placement.
//!
//! The paper's evaluation placed machines on a Newcastle LAN and across the
//! Internet in Newcastle, London and Pisa. A [`Site`] captures where a node
//! lives; the latency between two nodes is a function of their sites (see
//! [`crate::latency::LatencyMatrix`]).

use std::fmt;

/// Identifies a node (one address space: an application object together with
/// its NewTop service object).
///
/// Node ids are dense indices handed out by the runtime
/// ([`crate::sim::Sim::add_node`] or the threaded runtime's registry).
///
/// ```
/// use newtop_net::site::NodeId;
///
/// let n = NodeId::from_index(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[must_use]
    pub const fn from_index(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a node is located, for latency purposes.
///
/// `Lan` is the paper's 100 Mbit Newcastle LAN; `Newcastle`, `London` and
/// `Pisa` are the three Internet sites of the WAN experiments. `Custom`
/// supports additional synthetic sites in ablation experiments.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Site {
    /// A machine on the local-area network (same segment as every other
    /// `Lan` machine).
    #[default]
    Lan,
    /// Newcastle upon Tyne, United Kingdom.
    Newcastle,
    /// London, United Kingdom.
    London,
    /// Pisa, Italy.
    Pisa,
    /// A synthetic site for custom latency matrices.
    Custom(u8),
}

impl Site {
    /// All the named sites used by the paper's experiments.
    pub const NAMED: [Site; 4] = [Site::Lan, Site::Newcastle, Site::London, Site::Pisa];

    /// A short human-readable label.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Site::Lan => "LAN".to_owned(),
            Site::Newcastle => "Newcastle".to_owned(),
            Site::London => "London".to_owned(),
            Site::Pisa => "Pisa".to_owned(),
            Site::Custom(n) => format!("site{n}"),
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }

    #[test]
    fn site_labels() {
        assert_eq!(Site::Lan.to_string(), "LAN");
        assert_eq!(Site::Pisa.to_string(), "Pisa");
        assert_eq!(Site::Custom(7).to_string(), "site7");
    }

    #[test]
    fn named_sites_are_distinct() {
        for (i, a) in Site::NAMED.iter().enumerate() {
            for b in &Site::NAMED[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
