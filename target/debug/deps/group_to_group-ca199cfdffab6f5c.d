/root/repo/target/debug/deps/group_to_group-ca199cfdffab6f5c.d: examples/src/bin/group_to_group.rs

/root/repo/target/debug/deps/group_to_group-ca199cfdffab6f5c: examples/src/bin/group_to_group.rs

examples/src/bin/group_to_group.rs:
