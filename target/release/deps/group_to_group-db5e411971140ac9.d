/root/repo/target/release/deps/group_to_group-db5e411971140ac9.d: examples/src/bin/group_to_group.rs

/root/repo/target/release/deps/group_to_group-db5e411971140ac9: examples/src/bin/group_to_group.rs

examples/src/bin/group_to_group.rs:
