//! The campaign's crash-recovery scenario.
//!
//! Five durable nodes host two overlapping groups — `ga` = {n0..n4} and
//! `gb` = {n1..n3} — and multicast rounds of totally ordered payloads
//! while a [`FaultPlan`] kills one member mid-stream and later issues
//! `recover(node@t)`: the simulator cold-restarts the node, which
//! replays its snapshot + log, rejoins both groups through its last
//! durably known view, and fetches the missed suffix as chunked delta
//! state transfer at the rejoin view boundary.
//!
//! On top of the five standing invariants the scenario asserts the
//! recovery-specific obligations from ISSUE.md: the replayed history is
//! byte-identical to the pre-crash delivery sequence, the delta is
//! smaller than the full history, replay went through a snapshot plus a
//! log suffix, and the victim's converged history (replay + delta +
//! post-recovery deliveries) equals a never-crashed member's byte for
//! byte.
//!
//! Traffic is totally ordered only: the contiguous-ack floor (count of
//! durably delivered records) is a sound transfer baseline exactly
//! because every member delivers the same per-group sequence. Causal
//! traffic keeps its coverage in [`GcsScenario`](crate::scenario).

use std::time::Duration;

use bytes::Bytes;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use newtop_dir::harness::{DurableGcsNode, DurableHarness};
use newtop_dir::log::DeliveredRec;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId, OrderProtocol};
use newtop_net::faults::FaultPlan;
use newtop_net::sim::SimConfig;
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

use crate::{CheckReport, InvariantChecker, NodeLog, SentRecord};

/// Number of simulated nodes in the scenario.
pub const NODES: usize = 5;

/// One cell of the recovery campaign: a seeded run where one member is
/// killed mid-stream and later recovered from its durable state.
#[derive(Clone, Debug)]
pub struct RecoveryScenario {
    /// Simulator seed; also perturbs the send schedule.
    pub seed: u64,
    /// Total-order protocol for both groups.
    pub ordering: OrderProtocol,
    /// Parallel shard engines per node.
    pub shards: usize,
    /// When the victim is killed.
    pub crash_at: Duration,
    /// When `recover(node@t)` fires.
    pub recover_at: Duration,
    /// Roster index of the victim (a member of both groups).
    pub victim: usize,
    /// Multicast rounds per member.
    pub rounds: u64,
}

impl RecoveryScenario {
    /// A scenario with the default shape: n2 (in both groups) dies at
    /// 700 ms — past the first automatic snapshot — and recovers at
    /// 1.3 s with several rounds still to come.
    #[must_use]
    pub fn new(seed: u64, ordering: OrderProtocol) -> Self {
        RecoveryScenario {
            seed,
            ordering,
            shards: 1,
            crash_at: Duration::from_millis(700),
            recover_at: Duration::from_millis(1300),
            victim: 2,
            rounds: 10,
        }
    }

    /// Sets the per-node shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The fault schedule: kill the victim, then recover it.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::named("kill-recover")
            .crash(self.crash_at, self.victim)
            .recover(self.recover_at, self.victim)
    }

    /// One-line repro context; the plan clause includes the
    /// `recover nX@tms` op, so pasting the line reconstructs the fault
    /// schedule exactly.
    #[must_use]
    pub fn repro(&self) -> String {
        format!(
            "seed={} ordering={:?} recovery shards={} plan \"{}\"",
            self.seed,
            self.ordering,
            self.shards,
            self.plan(),
        )
    }

    /// Runs the scenario to completion and extracts the evidence.
    ///
    /// # Panics
    ///
    /// Panics when the victim index is outside the roster.
    #[must_use]
    pub fn run(&self) -> RecoveryRun {
        assert!(self.victim < NODES, "victim index out of roster");
        let cfg = SimConfig::lan(self.seed);
        let mut h = DurableHarness::new(cfg).with_shards(self.shards);
        let roster = h.add_nodes(Site::Lan, NODES);
        let victim = roster[self.victim];
        let ga = GroupId::new("ga");
        let gb = GroupId::new("gb");
        let config = GroupConfig::peer()
            .with_ordering(self.ordering)
            .with_time_silence(Duration::from_millis(20));
        h.create_group(SimTime::from_millis(1), &ga, &config, &roster);
        h.create_group(SimTime::from_millis(1), &gb, &config, &roster[1..4]);
        self.plan().apply(&mut h.sim, &roster);

        // Totally ordered rounds with seeded jitter. Rounds keep firing
        // through the dead window (those sends to the victim are lost
        // with it) and well past the recovery point, so the victim both
        // misses traffic and delivers fresh traffic after rejoining.
        let mut jitter = StdRng::seed_from_u64(self.seed ^ 0x0dd5_7a7e);
        let mut sent: Vec<SentRecord> = Vec::new();
        let memberships: [(&GroupId, &[NodeId]); 2] = [(&ga, &roster), (&gb, &roster[1..4])];
        for round in 0..self.rounds {
            let base = 25 + round * 250;
            for (gi, (group, members)) in memberships.iter().enumerate() {
                for (k, &node) in members.iter().enumerate() {
                    let at = SimTime::from_millis(
                        base + (k as u64) * 9 + (gi as u64) * 4 + jitter.gen_range(0u64..18),
                    );
                    let payload = format!("{group}/{node}/r{round}");
                    h.multicast(at, node, group, DeliveryOrder::Total, payload.clone());
                    sent.push(SentRecord {
                        group: (*group).clone(),
                        sender: node,
                        payload: Bytes::from(payload),
                        scheduled_at: at,
                        order: DeliveryOrder::Total,
                    });
                }
            }
        }

        let last_send = 25 + self.rounds.saturating_sub(1) * 250;
        let deadline = SimTime::from_millis(last_send)
            .max(SimTime::ZERO + self.plan().quiesce_at())
            + Duration::from_millis(2500);
        h.run_until(deadline.max(SimTime::from_millis(4500)));
        sent.sort_by_key(|s| s.scheduled_at);

        // The victim's invariant log covers its post-recovery life only
        // (a cold restart starts a fresh log, exactly like a joiner);
        // its pre-crash outputs feed the byte-identity checks instead.
        let logs = roster
            .iter()
            .map(|&id| NodeLog::from_outputs(id, h.sim.is_alive(id), &h.node(id).outputs))
            .collect();

        let mut groups = Vec::new();
        {
            let v = h.node(victim);
            for group in [&ga, &gb] {
                // The survivor baseline is the lowest-ranked member of
                // the group other than the victim — the same rule the
                // recovering node uses to pick its contact.
                let members: &[NodeId] = if *group == ga { &roster } else { &roster[1..4] };
                let survivor = *members.iter().find(|&&m| m != victim).unwrap();
                groups.push(GroupEvidence {
                    group: group.clone(),
                    pre_crash: DurableGcsNode::delivered_recs(&v.pre_crash_outputs, group),
                    replayed: v.replayed.get(group).cloned().unwrap_or_default(),
                    delta: v.delta_records.get(group).cloned().unwrap_or_default(),
                    delta_bytes: v.delta_bytes.get(group).copied().unwrap_or(0),
                    post_recovery: DurableGcsNode::delivered_recs(&v.outputs, group),
                    survivor_full: DurableGcsNode::delivered_recs(&h.node(survivor).outputs, group),
                    rejoined_at: v.rejoined_at.get(group).copied(),
                });
            }
            RecoveryRun {
                repro: self.repro(),
                logs,
                sent,
                groups,
                recovered_at: v.recovered_at,
                recovered_from_snapshot: v.recovered_from_snapshot,
                replayed_log_records: v.replayed_log_records,
            }
        }
    }
}

/// Per-group recovery evidence for the victim.
pub struct GroupEvidence {
    /// The group concerned.
    pub group: GroupId,
    /// What the victim delivered before the crash (ground truth for the
    /// replay byte-identity check).
    pub pre_crash: Vec<DeliveredRec>,
    /// What replay reconstructed from snapshot + log.
    pub replayed: Vec<DeliveredRec>,
    /// What arrived as delta state transfer.
    pub delta: Vec<DeliveredRec>,
    /// Payload bytes that travelled as delta.
    pub delta_bytes: u64,
    /// What the victim delivered after recovering.
    pub post_recovery: Vec<DeliveredRec>,
    /// A never-crashed member's full delivery history.
    pub survivor_full: Vec<DeliveredRec>,
    /// When the rejoin view installed at the victim, if it did.
    pub rejoined_at: Option<SimTime>,
}

/// The evidence extracted from one recovery scenario run.
pub struct RecoveryRun {
    /// Repro line for failure reports.
    pub repro: String,
    /// Per-node delivery logs (victim: post-recovery only).
    pub logs: Vec<NodeLog>,
    /// The ground-truth send schedule.
    pub sent: Vec<SentRecord>,
    /// Per-group victim evidence.
    pub groups: Vec<GroupEvidence>,
    /// When the victim's recovery replay ran.
    pub recovered_at: Option<SimTime>,
    /// Whether replay was seeded by a snapshot.
    pub recovered_from_snapshot: bool,
    /// Log records replayed beyond the snapshot.
    pub replayed_log_records: u64,
}

impl RecoveryRun {
    /// Checks the five standing invariants against the run's evidence.
    #[must_use]
    pub fn check(&self) -> CheckReport {
        InvariantChecker::new(self.logs.clone(), self.sent.clone()).check()
    }

    /// Checks the recovery-specific obligations; returns violation
    /// descriptions (empty = clean).
    #[must_use]
    pub fn recovery_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.recovered_at.is_none() {
            violations.push("victim never ran recovery replay".to_owned());
            return violations;
        }
        if !self.recovered_from_snapshot {
            violations.push("replay was not seeded by a snapshot".to_owned());
        }
        if self.replayed_log_records == 0 {
            violations.push("replay consumed no log suffix beyond the snapshot".to_owned());
        }
        for g in &self.groups {
            let group = &g.group;
            if g.pre_crash.is_empty() {
                violations.push(format!(
                    "{group}: victim delivered nothing before the crash"
                ));
                continue;
            }
            if g.replayed != g.pre_crash {
                violations.push(format!(
                    "{group}: replayed history ({} recs) differs from the pre-crash \
                     delivery sequence ({} recs)",
                    g.replayed.len(),
                    g.pre_crash.len()
                ));
            }
            if g.rejoined_at.is_none() {
                violations.push(format!("{group}: victim never rejoined"));
                continue;
            }
            if g.post_recovery.is_empty() {
                violations.push(format!("{group}: victim delivered nothing after rejoining"));
            }
            if g.delta.is_empty() {
                violations.push(format!("{group}: no records travelled as delta"));
            }
            let full_bytes: u64 = g.survivor_full.iter().map(|r| r.payload.len() as u64).sum();
            if g.delta_bytes >= full_bytes {
                violations.push(format!(
                    "{group}: delta bytes ({}) not smaller than the full history ({})",
                    g.delta_bytes, full_bytes
                ));
            }
            let mut converged = g.replayed.clone();
            converged.extend(g.delta.iter().cloned());
            converged.extend(g.post_recovery.iter().cloned());
            if converged != g.survivor_full {
                violations.push(format!(
                    "{group}: converged history ({} recs) differs from the survivor's \
                     ({} recs)",
                    converged.len(),
                    g.survivor_full.len()
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::delivery_divergence;
    use crate::scenario::ScenarioRun;

    fn assert_clean(scenario: RecoveryScenario) -> RecoveryRun {
        let repro = scenario.repro();
        let run = scenario.run();
        let report = run.check();
        assert!(report.passed(), "{repro}: {:?}", report.violations);
        let recovery = run.recovery_violations();
        assert!(recovery.is_empty(), "{repro}: {recovery:?}");
        run
    }

    #[test]
    fn kill_and_recover_passes_under_both_orderings() {
        for ordering in [OrderProtocol::Symmetric, OrderProtocol::Asymmetric] {
            assert_clean(RecoveryScenario::new(11, ordering));
        }
    }

    #[test]
    fn recovery_repro_line_names_the_recover_clause() {
        let scenario = RecoveryScenario::new(3, OrderProtocol::Symmetric);
        let repro = scenario.repro();
        assert!(
            repro.contains("crash n2@700ms") && repro.contains("recover n2@1300ms"),
            "repro line lacks recovery clauses: {repro}"
        );
    }

    #[test]
    fn sharded_recovery_matches_single_shard_recovery() {
        let make = |shards: usize| {
            RecoveryScenario::new(17, OrderProtocol::Asymmetric).with_shards(shards)
        };
        let (single, sharded) = (make(1).run(), make(4).run());
        let report = sharded.check();
        assert!(
            report.passed(),
            "{}: {:?}",
            sharded.repro,
            report.violations
        );
        let a = ScenarioRun {
            repro: single.repro.clone(),
            logs: single.logs.clone(),
            sent: single.sent.clone(),
        };
        let b = ScenarioRun {
            repro: sharded.repro.clone(),
            logs: sharded.logs.clone(),
            sent: sharded.sent.clone(),
        };
        assert!(
            delivery_divergence(&a, &b).is_none(),
            "shards=1 vs shards=4 diverged: {}",
            delivery_divergence(&a, &b).unwrap(),
        );
    }
}
