//! Virtual time for the discrete-event simulator.
//!
//! [`SimTime`] is an instant on the simulator's virtual clock, stored as
//! nanoseconds since the start of the run. Durations are ordinary
//! [`std::time::Duration`] values, so protocol code reads identically under
//! the simulator and under the threaded (wall-clock) runtime.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulator's virtual clock.
///
/// `SimTime` is measured in nanoseconds from the start of the simulation.
/// It is `Copy`, totally ordered, and supports arithmetic with
/// [`Duration`]:
///
/// ```
/// use newtop_net::time::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(5));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the start of the run.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds since the start of the run.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds since the start of the run.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from seconds since the start of the run.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the start of the run (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the start of the run (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the run, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the start of the run, as a float.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction, returning a [`Duration`].
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_nanos(d)))
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> Duration {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self} - {rhs}"
        );
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let millis = self.0 as f64 / 1e6;
        write!(f, "{millis:.3}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_is_millis() {
        assert_eq!(SimTime::from_micros(1500).to_string(), "1.500ms");
    }

    #[test]
    fn float_views() {
        let t = SimTime::from_millis(2500);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 2500.0).abs() < 1e-9);
    }
}
