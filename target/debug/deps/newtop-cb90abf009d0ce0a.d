/root/repo/target/debug/deps/newtop-cb90abf009d0ce0a.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

/root/repo/target/debug/deps/libnewtop-cb90abf009d0ce0a.rlib: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

/root/repo/target/debug/deps/libnewtop-cb90abf009d0ce0a.rmeta: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/nso.rs:
crates/core/src/proxy.rs:
crates/core/src/simnode.rs:
