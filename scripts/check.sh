#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Offline-friendly —
# everything below works from the vendored deps with no network access.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test --workspace --offline -q

echo "OK"
