//! Property tests of the delivery engine's ordering invariants, driven
//! directly (no network): arbitrary arrival interleavings must never
//! break per-sender FIFO, causal precedence, or cross-member total-order
//! agreement.

use bytes::Bytes;
use proptest::prelude::*;

use newtop_gcs::clock::DepsVector;
use newtop_gcs::engine::EngineConfig;
use newtop_gcs::group::{DeliveryOrder, GroupId, OrderProtocol};
use newtop_gcs::messages::DataMsg;
use newtop_gcs::view::ViewId;
use newtop_net::site::NodeId;

fn n(i: u32) -> NodeId {
    NodeId::from_index(i)
}

/// Builds a coherent message history: `senders` members each multicast
/// `per_sender` messages with strictly increasing shared Lamport time and
/// causal deps reflecting what each had "delivered" so far (a prefix of
/// the others' streams).
fn history(senders: u32, per_sender: u64, causal_every: u64) -> Vec<DataMsg> {
    let mut msgs = Vec::new();
    let mut clock = 0u64;
    let mut sent = vec![0u64; senders as usize];
    // Round-robin senders so timestamps interleave.
    for round in 0..per_sender {
        for s in 0..senders {
            clock += 1 + u64::from(s % 2);
            sent[s as usize] += 1;
            let seq = sent[s as usize];
            // Deps: everything the sender could have delivered — the
            // previous full round from everyone.
            let deps =
                DepsVector::from_pairs((0..senders).filter(|&q| q != s).map(|q| (n(q), round)));
            let order = if causal_every > 0 && seq.is_multiple_of(causal_every) {
                DeliveryOrder::Causal
            } else {
                DeliveryOrder::Total
            };
            msgs.push(DataMsg {
                group: GroupId::new("prop"),
                view: ViewId(1),
                sender: n(s),
                seq,
                lamport: clock,
                order,
                deps,
                acks: vec![],
                payload: Bytes::from(format!("{s}:{seq}")),
            });
        }
    }
    msgs
}

/// Builds the (single, authoritative) sequencer's order log for a run:
/// the sequencer ingests messages in its own arrival order and assigns
/// global positions.
fn sequencer_log(members: u32, msgs: &[DataMsg], arrival: &[usize]) -> Vec<(NodeId, u64)> {
    let mut seqr = EngineConfig {
        me: n(0),
        view: ViewId(1),
        members: (0..members).map(n).collect(),
        protocol: OrderProtocol::Asymmetric,
    }
    .build()
    .unwrap();
    for &idx in arrival {
        let _ = seqr.ingest_data(msgs[idx].clone());
        let _ = seqr.sequencer_poll();
    }
    let (_, log) = seqr.order_log_slice(1, usize::MAX);
    log
}

/// Feeds `msgs` to an engine in the given arrival order, interleaving
/// heartbeats so symmetric delivery can progress (or consuming the shared
/// sequencer log for asymmetric runs), and returns the delivered ids in
/// order. `me` must be a member that sends nothing.
fn run_engine(
    me: u32,
    members: u32,
    protocol: OrderProtocol,
    msgs: &[DataMsg],
    arrival: &[usize],
    shared_log: Option<&[(NodeId, u64)]>,
) -> Vec<(u32, u64)> {
    let view: Vec<NodeId> = (0..members).map(n).collect();
    let mut e = EngineConfig {
        me: n(me),
        view: ViewId(1),
        members: view,
        protocol,
    }
    .build()
    .unwrap();
    let mut delivered = Vec::new();
    let max_ts = msgs.iter().map(|m| m.lamport).max().unwrap_or(0);
    for &idx in arrival {
        let _ = e.ingest_data(msgs[idx].clone());
        delivered.extend(
            e.drain_deliverable()
                .into_iter()
                .map(|d| (d.sender.index(), d.seq)),
        );
    }
    if let Some(log) = shared_log {
        // The sequencer's records arrive (order within them is fixed).
        e.ingest_order(1, log);
    }
    // End of traffic: everyone goes quiet with a final heartbeat beyond
    // the last timestamp (the time-silence mechanism).
    for q in 0..members {
        let last = msgs
            .iter()
            .filter(|m| m.sender == n(q))
            .map(|m| m.seq)
            .max()
            .unwrap_or(0);
        e.note_null(n(q), max_ts + 1 + u64::from(q), last);
    }
    delivered.extend(
        e.drain_deliverable()
            .into_iter()
            .map(|d| (d.sender.index(), d.seq)),
    );
    delivered
}

fn assert_fifo(delivered: &[(u32, u64)], senders: u32) {
    for s in 0..senders {
        let seqs: Vec<u64> = delivered
            .iter()
            .filter(|(q, _)| *q == s)
            .map(|&(_, seq)| seq)
            .collect();
        for (i, &seq) in seqs.iter().enumerate() {
            assert_eq!(seq, i as u64 + 1, "FIFO violated for sender {s}: {seqs:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any arrival permutation delivers everything, in per-sender FIFO
    /// order, under both protocols.
    #[test]
    fn prop_fifo_and_completeness_under_any_arrival(
        perm_seed in 0u64..10_000,
        symmetric in any::<bool>(),
        causal_every in 0u64..4,
    ) {
        let senders = 3;
        let per_sender = 6;
        let msgs = history(senders, per_sender, causal_every);
        // Deterministic pseudo-random permutation of arrivals.
        let mut arrival: Vec<usize> = (0..msgs.len()).collect();
        let mut state = perm_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..arrival.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            arrival.swap(i, j);
        }
        let protocol = if symmetric { OrderProtocol::Symmetric } else { OrderProtocol::Asymmetric };
        let log = (!symmetric).then(|| sequencer_log(senders + 1, &msgs, &arrival));
        // `me` is member 3 (an observer that sends nothing).
        let delivered = run_engine(3, senders + 1, protocol, &msgs, &arrival, log.as_deref());
        prop_assert_eq!(delivered.len(), msgs.len(), "all messages delivered");
        assert_fifo(&delivered, senders);
    }

    /// Two members receiving the same messages in *different* orders
    /// deliver the identical total-order sequence.
    #[test]
    fn prop_total_order_agreement_across_arrival_orders(
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
        symmetric in any::<bool>(),
    ) {
        let senders = 3;
        let msgs = history(senders, 5, 0); // all total-order
        let shuffle = |seed: u64| {
            let mut arrival: Vec<usize> = (0..msgs.len()).collect();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for i in (1..arrival.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                arrival.swap(i, j);
            }
            arrival
        };
        let protocol = if symmetric { OrderProtocol::Symmetric } else { OrderProtocol::Asymmetric };
        // One authoritative sequencer log (asymmetric); members see the
        // data in different orders.
        let log = (!symmetric).then(|| sequencer_log(senders + 2, &msgs, &shuffle(seed_a ^ 0xABCD)));
        let a = run_engine(3, senders + 2, protocol, &msgs, &shuffle(seed_a), log.as_deref());
        let b = run_engine(4, senders + 2, protocol, &msgs, &shuffle(seed_b), log.as_deref());
        prop_assert_eq!(a.len(), msgs.len());
        prop_assert_eq!(a, b, "total order must not depend on arrival order");
    }

    /// Large (≥64 KiB) payloads stay refcount-shared through the whole
    /// buffer/retransmit/state-transfer path: the message handed to
    /// `ingest_data`, the buffered copy a NACK retransmits, the
    /// state-transfer export, and the delivered message are all the same
    /// allocation — no byte copy anywhere.
    #[test]
    fn prop_large_payloads_share_one_allocation(
        fill in any::<u8>(),
        extra in 0usize..4096,
    ) {
        use std::sync::Arc;

        let size = 64 * 1024 + extra;
        let view: Vec<NodeId> = (0..3).map(n).collect();
        let mut e = EngineConfig {
            me: n(2),
            view: ViewId(1),
            members: view,
            protocol: OrderProtocol::Symmetric,
        }
        .build()
        .unwrap();
        let msg = Arc::new(DataMsg {
            group: GroupId::new("prop"),
            view: ViewId(1),
            sender: n(0),
            seq: 1,
            lamport: 1,
            order: DeliveryOrder::Total,
            deps: DepsVector::default(),
            acks: vec![],
            payload: Bytes::from(vec![fill; size]),
        });
        let _ = e.ingest_data(Arc::clone(&msg));

        // The retransmit path (NACK answering) hands back the very same
        // allocation the sender multicast.
        let buffered = e.get_buffered(n(0), 1).expect("buffered for retransmit");
        prop_assert!(Arc::ptr_eq(buffered, &msg), "buffer shares, not copies");

        // State transfer exports the same allocation too.
        let exported = e.export_msgs_beyond(&vec![(n(0), 0)]);
        prop_assert_eq!(exported.len(), 1);
        prop_assert!(Arc::ptr_eq(&exported[0], &msg), "export shares, not copies");

        // Deliver it (everyone goes quiet past its timestamp) and check the
        // delivered message still points at the original payload bytes.
        for q in 0..3 {
            e.note_null(n(q), 10 + u64::from(q), u64::from(q == 0));
        }
        let delivered = e.drain_deliverable();
        prop_assert_eq!(delivered.len(), 1);
        prop_assert_eq!(delivered[0].payload.as_ptr(), msg.payload.as_ptr());
        prop_assert_eq!(delivered[0].payload.len(), size);
    }

    /// Causal precedence: a message never delivers before the per-sender
    /// prefixes named in its dependency vector.
    #[test]
    fn prop_causal_deps_respected(
        perm_seed in 0u64..10_000,
        symmetric in any::<bool>(),
    ) {
        let senders = 3;
        let msgs = history(senders, 5, 2); // every 2nd message causal-only
        let mut arrival: Vec<usize> = (0..msgs.len()).collect();
        let mut state = perm_seed | 1;
        for i in (1..arrival.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            arrival.swap(i, j);
        }
        let protocol = if symmetric { OrderProtocol::Symmetric } else { OrderProtocol::Asymmetric };
        let log = (!symmetric).then(|| sequencer_log(senders + 1, &msgs, &arrival));
        let delivered = run_engine(3, senders + 1, protocol, &msgs, &arrival, log.as_deref());
        // Reconstruct delivery positions and check each message's deps.
        let pos_of = |sender: u32, seq: u64| {
            delivered.iter().position(|&(q, s)| q == sender && s == seq)
        };
        for m in &msgs {
            let me_pos = pos_of(m.sender.index(), m.seq).expect("delivered");
            for (q, prefix) in m.deps.iter() {
                for s in 1..=prefix {
                    let dep_pos = pos_of(q.index(), s).expect("dep delivered");
                    prop_assert!(
                        dep_pos < me_pos,
                        "{}:{} delivered at {} before its dependency {}:{} at {}",
                        m.sender, m.seq, me_pos, q, s, dep_pos
                    );
                }
            }
        }
    }
}
