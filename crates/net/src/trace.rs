//! Structured protocol-event tracing.
//!
//! Every protocol layer above the substrate records typed
//! [`TraceEvent`]s into a bounded [`TraceLog`]: view installations,
//! failure suspicions, NACKs and retransmissions, sequencer ordering
//! batches, time-silence nulls, request forwarding, reply collection,
//! client rebinds and reply-cache dedups. Timestamps are the host
//! runtime's [`SimTime`] — virtual time under the simulator, wall-clock
//! elapsed time under the threaded runtime — so traces from either
//! runtime read identically.
//!
//! The log is a ring: when full, the oldest records are dropped (and
//! counted), so tracing is always safe to leave on. Aggregate per-kind
//! counts live in the metrics registry (see
//! [`crate::metrics::Observability::record`]), which never drops.

use std::collections::VecDeque;
use std::fmt;

use crate::site::NodeId;
use crate::time::SimTime;

/// A typed protocol event. Group identifiers are carried as strings so
/// the substrate stays independent of the group-communication layer's
/// types.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A group installed a new view.
    ViewInstalled {
        /// The group.
        group: String,
        /// The installed view's number.
        view: u64,
        /// Members in the view.
        members: usize,
    },
    /// The failure detector suspected a member.
    Suspected {
        /// The group the suspicion was raised in.
        group: String,
        /// The suspected member.
        suspect: NodeId,
    },
    /// A negative acknowledgement was sent to recover missing messages.
    NackSent {
        /// The group.
        group: String,
        /// The member asked to retransmit.
        to: NodeId,
        /// Messages requested.
        count: usize,
    },
    /// Stored messages were retransmitted in answer to a NACK.
    Retransmit {
        /// The group.
        group: String,
        /// The member that asked.
        to: NodeId,
        /// Messages retransmitted.
        count: usize,
    },
    /// The sequencer multicast a batch of ordering records (asymmetric
    /// protocol).
    SequencerBatch {
        /// The group.
        group: String,
        /// Ordering records in the batch.
        records: usize,
    },
    /// A time-silence null message was sent (liveness heartbeat).
    TimeSilenceNull {
        /// The group.
        group: String,
    },
    /// A request manager forwarded a client request into the server
    /// group (open binding).
    RequestForwarded {
        /// The requesting client.
        client: NodeId,
        /// The client's call number.
        number: u64,
    },
    /// A request manager finished collecting a call's replies and
    /// relayed the result to the client.
    ReplyCollected {
        /// The requesting client.
        client: NodeId,
        /// The client's call number.
        number: u64,
    },
    /// A server executed a request (at-most-once per call per replica).
    Executed {
        /// The requesting client.
        client: NodeId,
        /// The client's call number.
        number: u64,
    },
    /// A retried request was answered from the reply cache without
    /// re-execution (§4.1 deduplication).
    RetryDeduped {
        /// The requesting client.
        client: NodeId,
        /// The client's call number.
        number: u64,
    },
    /// A client's open binding broke (its request manager vanished) and
    /// the application will rebind (§4.1).
    Rebind {
        /// The broken client/server group.
        group: String,
        /// The manager that disappeared.
        manager: NodeId,
    },
    /// A binding completed and is ready for invocations.
    BindReady {
        /// The client/server group.
        group: String,
    },
    /// A binding attempt failed.
    BindFailed {
        /// The client/server group that failed.
        group: String,
    },
    /// A passive-replication backup was promoted to primary and replayed
    /// its backlog.
    Promoted {
        /// The server group.
        group: String,
        /// Backlogged requests replayed.
        replayed: usize,
    },
    /// An incoming message body failed to unmarshal and was dropped
    /// (also counted under the `decode.malformed` metric).
    MalformedDropped {
        /// The ORB operation the body arrived under.
        operation: String,
    },
}

impl TraceEvent {
    /// The event's kind as a stable snake-case name — also the suffix of
    /// its auto-maintained `ev.*` counter.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ViewInstalled { .. } => "view_installed",
            TraceEvent::Suspected { .. } => "suspected",
            TraceEvent::NackSent { .. } => "nack_sent",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::SequencerBatch { .. } => "sequencer_batch",
            TraceEvent::TimeSilenceNull { .. } => "time_silence_null",
            TraceEvent::RequestForwarded { .. } => "request_forwarded",
            TraceEvent::ReplyCollected { .. } => "reply_collected",
            TraceEvent::Executed { .. } => "executed",
            TraceEvent::RetryDeduped { .. } => "retry_deduped",
            TraceEvent::Rebind { .. } => "rebind",
            TraceEvent::BindReady { .. } => "bind_ready",
            TraceEvent::BindFailed { .. } => "bind_failed",
            TraceEvent::Promoted { .. } => "promoted",
            TraceEvent::MalformedDropped { .. } => "malformed_dropped",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::ViewInstalled {
                group,
                view,
                members,
            } => write!(f, "view_installed {group} v{view} ({members} members)"),
            TraceEvent::Suspected { group, suspect } => {
                write!(f, "suspected {suspect} in {group}")
            }
            TraceEvent::NackSent { group, to, count } => {
                write!(f, "nack_sent to {to} in {group} ({count} msgs)")
            }
            TraceEvent::Retransmit { group, to, count } => {
                write!(f, "retransmit {count} msgs to {to} in {group}")
            }
            TraceEvent::SequencerBatch { group, records } => {
                write!(f, "sequencer_batch {records} records in {group}")
            }
            TraceEvent::TimeSilenceNull { group } => write!(f, "time_silence_null in {group}"),
            TraceEvent::RequestForwarded { client, number } => {
                write!(f, "request_forwarded {client}#{number}")
            }
            TraceEvent::ReplyCollected { client, number } => {
                write!(f, "reply_collected {client}#{number}")
            }
            TraceEvent::Executed { client, number } => write!(f, "executed {client}#{number}"),
            TraceEvent::RetryDeduped { client, number } => {
                write!(f, "retry_deduped {client}#{number}")
            }
            TraceEvent::Rebind { group, manager } => {
                write!(f, "rebind {group} (manager {manager} gone)")
            }
            TraceEvent::BindReady { group } => write!(f, "bind_ready {group}"),
            TraceEvent::BindFailed { group } => write!(f, "bind_failed {group}"),
            TraceEvent::Promoted { group, replayed } => {
                write!(f, "promoted in {group} ({replayed} replayed)")
            }
            TraceEvent::MalformedDropped { operation } => {
                write!(f, "malformed_dropped ({operation} body)")
            }
        }
    }
}

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// When the event happened (runtime time base).
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12?}] {}", self.at, self.event)
    }
}

/// Default ring capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded ring of [`TraceRecord`]s.
#[derive(Clone, Debug)]
pub struct TraceLog {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// A log with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// A log holding at most `capacity` records.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// Records retained (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records of one kind (oldest first).
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Count of retained records of one kind. Note this undercounts once
    /// the ring has dropped records; the `ev.*` counters in the metrics
    /// registry are exact.
    #[must_use]
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// Copies out all retained records.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }

    /// Discards all retained records (the dropped count is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::from_millis(1),
            TraceEvent::Suspected {
                group: "g".into(),
                suspect: n(2),
            },
        );
        log.record(
            SimTime::from_millis(2),
            TraceEvent::TimeSilenceNull { group: "g".into() },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.count_kind("suspected"), 1);
        assert_eq!(log.count_kind("time_silence_null"), 1);
        assert_eq!(log.count_kind("rebind"), 0);
        assert!(log.iter().next().unwrap().at < log.iter().last().unwrap().at);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut log = TraceLog::with_capacity(2);
        for i in 0..5u64 {
            log.record(
                SimTime::from_millis(i),
                TraceEvent::TimeSilenceNull {
                    group: format!("g{i}"),
                },
            );
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let first = log.iter().next().unwrap();
        assert_eq!(first.at, SimTime::from_millis(3));
    }

    #[test]
    fn kinds_are_stable() {
        let e = TraceEvent::Rebind {
            group: "b".into(),
            manager: n(0),
        };
        assert_eq!(e.kind(), "rebind");
        assert!(e.to_string().contains("rebind"));
    }
}
