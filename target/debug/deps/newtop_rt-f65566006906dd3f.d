/root/repo/target/debug/deps/newtop_rt-f65566006906dd3f.d: crates/rt/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_rt-f65566006906dd3f.rmeta: crates/rt/src/lib.rs Cargo.toml

crates/rt/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
