/root/repo/target/debug/deps/quickstart-df166d71e3cb8dd7.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-df166d71e3cb8dd7: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
