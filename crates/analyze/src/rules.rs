//! The four NewTop rule families.
//!
//! Every rule runs over the token bodies of non-test functions produced
//! by [`crate::items`]. The rules are deliberately over-approximate
//! (name-based reachability, token-shape matching) — the committed
//! allowlist absorbs the handful of justified exceptions, and
//! `--self-test` proves each family still fires on known-bad input.

use crate::items::{FnItem, ParsedFile};
use crate::lexer::{TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Rule family identifiers (used in findings and `analyze.allow`).
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_PANIC_FREE: &str = "panic-free";
pub const RULE_BOUNDED: &str = "bounded";
pub const RULE_LOCK_HYGIENE: &str = "lock-hygiene";
pub const RULE_DURABILITY: &str = "durability";

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line of the offending token.
    pub line: u32,
    /// Rule family (`RULE_*`).
    pub rule: &'static str,
    /// Enclosing function name (allowlist key).
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

/// Crates whose code must be deterministic (rule 1): the protocol
/// decision logic. `newtop-net` is excluded — it owns the transports and
/// the blessed `time::Clock` abstraction itself.
pub const PROTOCOL_CRATES: &[&str] = &["gcs", "invocation", "flow", "core", "check"];

/// The only crate allowed to construct unbounded channels (rule 3): the
/// flow-control crate owns every queue discipline.
pub const BOUNDED_EXEMPT_CRATE: &str = "flow";

/// Crates analysed for panic-freedom (rule 2): the ones that carry
/// network-input decode/ingest paths. The name-based call graph is
/// over-approximate, so the set is kept to where the entry points and
/// their callees actually live — widening it to harness crates
/// (`check`, `workloads`, the analyzer itself) only manufactures
/// name-collision noise.
pub const PANIC_FREE_CRATES: &[&str] = &["gcs", "orb", "invocation", "core"];

/// Network-input entry points (rule 2). `owner`/`name` of `None` match
/// anything: every `CdrDecoder` method is a decode boundary, and every
/// `from_cdr`/`from_frame`/`decode` constructor on any message type is
/// one too, as is `GcsMember::on_message` (the member ingest path).
pub const ENTRY_POINTS: &[(Option<&str>, Option<&str>)] = &[
    (Some("CdrDecoder"), None),
    (None, Some("from_cdr")),
    (None, Some("from_frame")),
    (None, Some("decode")),
    (Some("GcsMember"), Some("on_message")),
];

/// Calls that hand data to a transport or queue (rule 4): holding a lock
/// guard across any of these risks deadlock and priority inversion.
const SEND_LIKE: &[&str] = &[
    "send",
    "try_send",
    "send_fanout",
    "write_all",
    "oneway",
    "oneway_fanout",
    "connect",
    "recv",
];

/// Extracts `gcs` from `crates/gcs/src/member.rs`.
#[must_use]
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn is_protocol_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| PROTOCOL_CRATES.contains(&c))
}

/// Runs every rule family over the parsed workspace.
#[must_use]
pub fn run_all(files: &[ParsedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    determinism(files, &mut out);
    panic_free(files, &mut out);
    bounded(files, &mut out);
    lock_hygiene(files, &mut out);
    cross_shard_channels(files, &mut out);
    durability(files, &mut out);
    out.sort();
    out.dedup();
    out
}

fn production_fns(files: &[ParsedFile]) -> impl Iterator<Item = (&ParsedFile, &FnItem)> {
    files.iter().flat_map(|f| {
        f.fns
            .iter()
            .filter(|item| !item.is_test)
            .map(move |item| (f, item))
    })
}

fn body<'a>(file: &'a ParsedFile, item: &FnItem) -> &'a [Token] {
    &file.tokens[item.body.0..item.body.1]
}

// ---------------------------------------------------------------- rule 1

/// Determinism: protocol crates must not read wall-clock time, sample
/// OS randomness, or make decisions over `HashMap`/`HashSet` iteration
/// order. All time flows through `newtop_net::time`; all keyed protocol
/// state uses ordered maps.
fn determinism(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        if !is_protocol_crate(&file.path) {
            continue;
        }
        let toks = body(file, item);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let msg = match t.text.as_str() {
                "Instant" if path_call(toks, i, "now") => {
                    Some("Instant::now() in protocol code; route time through newtop_net::time")
                }
                "SystemTime" => {
                    Some("SystemTime in protocol code; route time through newtop_net::time")
                }
                "thread_rng" | "from_entropy" => {
                    Some("OS randomness in protocol code; seed RNGs explicitly")
                }
                "HashMap" | "HashSet" => Some(
                    "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet in protocol state",
                ),
                _ => None,
            };
            if let Some(m) = msg {
                out.push(finding(RULE_DETERMINISM, file, item, t, m));
            }
        }
    }
}

/// True when `toks[i]` starts the path call `Ident::method(`.
fn path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == method)
}

// ---------------------------------------------------------------- rule 2

/// Panic-freedom on message paths: no `unwrap`/`expect`/panicking macro/
/// slice-indexing in any function reachable (by name) from a
/// network-input entry point. Malformed bytes must surface as
/// `NewtopError::Malformed`, never as a panic.
fn panic_free(files: &[ParsedFile], out: &mut Vec<Finding>) {
    // Name → function occurrences, for the over-approximate call graph.
    // Restricted to the message-path crates; `testkit` is test harness
    // living in src/.
    let in_scope = |path: &str| {
        crate_of(path).is_some_and(|c| PANIC_FREE_CRATES.contains(&c)) && !path.contains("testkit")
    };
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let all: Vec<(&ParsedFile, &FnItem, usize, usize)> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| in_scope(&f.path))
        .flat_map(|(fi, f)| {
            f.fns
                .iter()
                .enumerate()
                .filter(|(_, item)| !item.is_test)
                .map(move |(ii, item)| (f, item, fi, ii))
        })
        .collect();
    for (_, item, fi, ii) in &all {
        by_name
            .entry(item.name.as_str())
            .or_default()
            .push((*fi, *ii));
    }

    // Seed with the entry points, then BFS over callee names.
    let mut reachable: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut queue: Vec<(usize, usize)> = Vec::new();
    for (_, item, fi, ii) in &all {
        let hit = ENTRY_POINTS.iter().any(|(owner, name)| {
            owner.is_none_or(|o| item.owner.as_deref() == Some(o))
                && name.is_none_or(|n| item.name == n)
        });
        if hit && reachable.insert((*fi, *ii)) {
            queue.push((*fi, *ii));
        }
    }
    while let Some((fi, ii)) = queue.pop() {
        let file = &files[fi];
        let item = &file.fns[ii];
        for callee in callee_names(body(file, item)) {
            if let Some(targets) = by_name.get(callee.as_str()) {
                for &t in targets {
                    if reachable.insert(t) {
                        queue.push(t);
                    }
                }
            }
        }
    }

    for &(fi, ii) in &reachable {
        let file = &files[fi];
        let item = &file.fns[ii];
        let toks = body(file, item);
        for (i, t) in toks.iter().enumerate() {
            match t.kind {
                TokKind::Ident => {
                    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                    let after_dot = i > 0 && toks[i - 1].is_punct('.');
                    let msg = match t.text.as_str() {
                        "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                            Some(format!(
                                "{}! on a message path; return NewtopError::Malformed",
                                t.text
                            ))
                        }
                        "unwrap" | "expect" if after_dot => Some(format!(
                            ".{}() on a message path; return NewtopError::Malformed",
                            t.text
                        )),
                        _ => None,
                    };
                    if let Some(m) = msg {
                        out.push(finding(RULE_PANIC_FREE, file, item, t, &m));
                    }
                }
                TokKind::Punct if t.text == "[" && i > 0 => {
                    let prev = &toks[i - 1];
                    let indexing = matches!(prev.kind, TokKind::Ident | TokKind::Lit)
                        && !is_keyword(&prev.text)
                        || prev.is_punct(')')
                        || prev.is_punct(']');
                    if indexing {
                        out.push(finding(
                            RULE_PANIC_FREE,
                            file,
                            item,
                            t,
                            "slice/map indexing on a message path can panic; use .get() and return NewtopError::Malformed",
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

fn is_keyword(s: &str) -> bool {
    // `let [a, b] = ...` and `ref`/`box` patterns start arrays, not
    // index expressions.
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "while"
            | "loop"
            | "mut"
            | "move"
            | "as"
            | "let"
            | "ref"
    )
}

/// Names invoked as `name(...)` or `.name(...)` inside a body.
fn callee_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            names.insert(t.text.clone());
        }
    }
    names
}

// ---------------------------------------------------------------- rule 3

/// Boundedness: PR 4 replaced every unbounded channel with
/// `newtop_flow::queue`; this rule locks that in. Only `newtop-flow`
/// itself may construct unbounded channels.
fn bounded(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        if crate_of(&file.path) == Some(BOUNDED_EXEMPT_CRATE) {
            continue;
        }
        let toks = body(file, item);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if t.text == "unbounded" && call {
                out.push(finding(
                    RULE_BOUNDED,
                    file,
                    item,
                    t,
                    "unbounded channel outside newtop-flow; use newtop_flow::queue::bounded",
                ));
            }
            if t.text == "channel"
                && call
                && i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks
                    .get(i.wrapping_sub(3))
                    .is_some_and(|p| p.kind == TokKind::Ident && p.text == "mpsc")
            {
                out.push(finding(
                    RULE_BOUNDED,
                    file,
                    item,
                    t,
                    "std::sync::mpsc::channel is unbounded; use newtop_flow::queue::bounded",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- rule 4

/// Lock hygiene: a `Mutex`/`RwLock` guard bound with `let` must be
/// dropped before any transport send or queue hand-off in the same
/// block. Holding one across `send`/`write_all`/`connect`/… is the
/// deadlock and priority-inversion shape PR 4 removed from
/// `tcp.rs`/`channel.rs`.
fn lock_hygiene(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        let toks = body(file, item);
        let mut i = 0;
        while i < toks.len() {
            if let Some((guard, stmt_end)) = guard_binding(toks, i) {
                scan_guard_scope(file, item, toks, stmt_end, &guard, out);
                i = stmt_end + 1;
            } else {
                i += 1;
            }
        }
    }
}

/// Matches `let [mut] NAME = <expr containing .lock()/.read()/.write()>;`
/// starting at `i`; returns the guard name and the index of the `;`.
fn guard_binding(toks: &[Token], i: usize) -> Option<(String, usize)> {
    if !toks[i].is_ident("let") {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks
        .get(j)
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    // Scan the initializer to the statement's `;` at depth 0 and look
    // for a lock acquisition. Chained recovery like
    // `.lock().unwrap_or_else(|e| e.into_inner())` still binds a guard.
    let mut depth = 0i32;
    let mut acquires = false;
    let mut k = j + 2;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct if depth == 0 && t.text == ";" => {
                return if acquires { Some((name, k)) } else { None };
            }
            TokKind::Punct if matches!(t.text.as_str(), "(" | "[" | "{") => depth += 1,
            TokKind::Punct if matches!(t.text.as_str(), ")" | "]" | "}") => depth -= 1,
            // Depth 0 only: a lock taken inside a nested block/closure
            // in the initializer dies before the binding completes.
            TokKind::Ident
                if depth == 0
                    && matches!(t.text.as_str(), "lock" | "read" | "write")
                    && k >= 1
                    && toks[k - 1].is_punct('.')
                    && toks.get(k + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                acquires = true;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Scans from the end of a guard binding to the end of its enclosing
/// block (or an explicit `drop(guard)`), flagging send-like calls made
/// while the guard is live.
fn scan_guard_scope(
    file: &ParsedFile,
    item: &FnItem,
    toks: &[Token],
    stmt_end: usize,
    guard: &str,
    out: &mut Vec<Finding>,
) {
    let mut depth = 0i32;
    let mut i = stmt_end + 1;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => depth += 1,
            TokKind::Punct if t.text == "}" => {
                depth -= 1;
                if depth < 0 {
                    return; // guard's block closed; guard dropped
                }
            }
            // `drop(guard)` releases it early.
            TokKind::Ident
                if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident(guard))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct(')')) =>
            {
                return;
            }
            TokKind::Ident
                if SEND_LIKE.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(finding(
                    RULE_LOCK_HYGIENE,
                    file,
                    item,
                    t,
                    &format!(
                        "`{}` called while lock guard `{guard}` is held; drop the guard before the hand-off",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
        i += 1;
    }
}

/// Lock-hygiene extension (PR 6): cross-shard channel ownership. A
/// function that constructs channel endpoints while dealing in shards is
/// wiring a cross-shard hand-off, and only the `newtop-rt` shard-worker
/// pipeline — the functions that actually spawn the
/// `newtop-rt-shard{k}-{node}` threads — may own those channels.
/// Open-coding a shard fan-in/fan-out anywhere else bypasses the
/// runtime's bounded ingress discipline.
///
/// Token shape, over-approximate like the other families: a production
/// function body that mentions a `shard*` identifier AND calls
/// `bounded(...)`/`unbounded(...)` (turbofish included) is flagged
/// unless it lives in crate `rt` and also spawns a worker thread.
fn cross_shard_channels(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        // The analyzer's own rule plumbing names both shards and the
        // bounded() rule function; it is not protocol wiring.
        if crate_of(&file.path) == Some("analyze") {
            continue;
        }
        let toks = body(file, item);
        let mentions_shard = toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("shard"));
        if !mentions_shard {
            continue;
        }
        let spawns_worker = toks.iter().enumerate().any(|(i, t)| {
            t.kind == TokKind::Ident
                && t.text == "spawn"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        });
        if crate_of(&file.path) == Some("rt") && spawns_worker {
            continue;
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "bounded" | "unbounded")
                && channel_ctor_call(toks, i)
            {
                out.push(finding(
                    RULE_LOCK_HYGIENE,
                    file,
                    item,
                    t,
                    "cross-shard channel constructed outside the newtop-rt shard workers; route shard fan-in/fan-out through the runtime's ingress pipeline",
                ));
            }
        }
    }
}

/// Matches `name(` or the turbofish form `name::<T>(` at `toks[i]`.
fn channel_ctor_call(toks: &[Token], i: usize) -> bool {
    if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return true;
    }
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
}

// ---------------------------------------------------------------- rule 5

/// The crate whose event handlers stage durable log writes (rule 5).
pub const DURABLE_CRATE: &str = "dir";

/// Event-handler entry points that acknowledge work by returning
/// (rule 5): the simulator / NSO callback surface. `on_restart` is
/// deliberately absent — a restart acknowledges nothing; it only
/// discards staged bytes.
pub const DURABLE_HANDLERS: &[&str] =
    &["on_event", "on_packet", "on_timer", "on_start", "on_output"];

/// Durability (PR 9): no buffered log write may be acknowledged before
/// its flush point. In the durable-log crate, an event handler whose
/// call closure stages a store append (an `.append(` method call) must
/// also reach a flush (a `.sync(` method call) before it returns —
/// otherwise the handler acknowledges a write that is still sitting in
/// the OS buffer, and a crash loses it. Reachability is the same
/// name-based over-approximation as rule 2. `DurableStore`'s own
/// internals frame onto plain buffers (`append_frame`; `Vec::append`
/// inside `sync`) and only enter a closure through the very `.sync(`
/// call that satisfies the rule, so they never trip it.
fn durability(files: &[ParsedFile], out: &mut Vec<Finding>) {
    // Name → function occurrences within the durable crate.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut handlers: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if crate_of(&file.path) != Some(DURABLE_CRATE) {
            continue;
        }
        for (ii, item) in file.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push((fi, ii));
            if DURABLE_HANDLERS.contains(&item.name.as_str()) {
                handlers.push((fi, ii));
            }
        }
    }
    for &handler in &handlers {
        let mut reachable: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut queue = vec![handler];
        reachable.insert(handler);
        while let Some((fi, ii)) = queue.pop() {
            let file = &files[fi];
            for callee in callee_names(body(file, &file.fns[ii])) {
                if let Some(targets) = by_name.get(callee.as_str()) {
                    for &t in targets {
                        if reachable.insert(t) {
                            queue.push(t);
                        }
                    }
                }
            }
        }
        // One pass over the closure: where the appends are staged, and
        // whether any flush is reachable at all.
        let mut appends: Vec<(usize, usize, usize)> = Vec::new();
        let mut flushed = false;
        for &(fi, ii) in &reachable {
            let file = &files[fi];
            let toks = body(file, &file.fns[ii]);
            for (i, t) in toks.iter().enumerate() {
                let method_call = t.kind == TokKind::Ident
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if !method_call {
                    continue;
                }
                match t.text.as_str() {
                    "append" => appends.push((fi, ii, i)),
                    "sync" => flushed = true,
                    _ => {}
                }
            }
        }
        if flushed || appends.is_empty() {
            continue;
        }
        let hname = files[handler.0].fns[handler.1].name.clone();
        for (fi, ii, i) in appends {
            let file = &files[fi];
            let item = &file.fns[ii];
            let tok = &body(file, item)[i];
            out.push(finding(
                RULE_DURABILITY,
                file,
                item,
                tok,
                &format!(
                    "durable append with no `sync` reachable before `{hname}` returns; a crash after the handler acknowledges loses the staged write"
                ),
            ));
        }
    }
}

fn finding(
    rule: &'static str,
    file: &ParsedFile,
    item: &FnItem,
    tok: &Token,
    message: &str,
) -> Finding {
    Finding {
        file: file.path.clone(),
        line: tok.line,
        rule,
        func: item.name.clone(),
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        run_all(&[parse_file(path, lex(src))])
    }

    #[test]
    fn determinism_flags_wall_clock_in_protocol_crates() {
        let f = check(
            "crates/gcs/src/member.rs",
            "fn tick(&mut self) { let t = Instant::now(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_DETERMINISM);
    }

    #[test]
    fn determinism_ignores_net_and_tests() {
        assert!(check(
            "crates/net/src/tcp.rs",
            "fn tick() { let t = Instant::now(); }",
        )
        .is_empty());
        assert!(check(
            "crates/gcs/src/member.rs",
            "#[cfg(test)] mod tests { fn tick() { let t = Instant::now(); } }",
        )
        .is_empty());
    }

    #[test]
    fn determinism_flags_hash_maps() {
        let f = check(
            "crates/core/src/nso.rs",
            "fn route(&self) {\n let m: HashMap<u32, u32> =\n HashMap::new(); }",
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == RULE_DETERMINISM));
    }

    #[test]
    fn panic_free_reaches_through_calls() {
        let f = check(
            "crates/orb/src/cdr.rs",
            "impl CdrDecoder { fn read_u8(&mut self) -> u8 { helper(self) } }\n\
             fn helper(d: &mut CdrDecoder) -> u8 { d.buf[0] }\n\
             fn unrelated(v: &[u8]) -> u8 { v[0] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PANIC_FREE);
        assert_eq!(f[0].func, "helper");
    }

    #[test]
    fn panic_free_flags_unwrap_expect_and_macros() {
        let f = check(
            "crates/gcs/src/message.rs",
            "impl GcsMessage { fn from_cdr(d: &[u8]) -> Self { let x: Option<u8> = None; x.unwrap(); x.expect(\"x\"); panic!(\"no\"); Self }}",
        );
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn panic_free_ignores_array_literals_and_types() {
        let f = check(
            "crates/orb/src/cdr.rs",
            "impl CdrDecoder { fn pad(&mut self) -> [u8; 4] { let b = [0u8; 4]; b } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bounded_flags_unbounded_outside_flow() {
        let f = check(
            "crates/net/src/channel.rs",
            "fn mk() { let (tx, rx) = unbounded(); let p = mpsc::channel(); }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == RULE_BOUNDED));
        assert!(check(
            "crates/flow/src/queue.rs",
            "fn mk() { let (tx, rx) = unbounded(); }",
        )
        .is_empty());
    }

    #[test]
    fn lock_hygiene_flags_send_under_guard() {
        let f = check(
            "crates/net/src/tcp.rs",
            "fn send(&self) { let mut conns = self.shared.conns.lock(); conns.stream.write_all(&frame); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_HYGIENE);
    }

    #[test]
    fn lock_hygiene_respects_block_end_and_drop() {
        assert!(check(
            "crates/net/src/channel.rs",
            "fn a(&self) { { let g = self.registry.read(); let tx = g.tx.clone(); } tx.try_send(m); }",
        )
        .is_empty());
        assert!(check(
            "crates/net/src/channel.rs",
            "fn a(&self) { let g = self.registry.read(); let tx = g.tx.clone(); drop(g); tx.try_send(m); }",
        )
        .is_empty());
    }

    #[test]
    fn cross_shard_channels_flagged_outside_rt() {
        let f = check(
            "crates/bench/src/bin/loadgen.rs",
            "fn fan_out(n: usize) { let shards = n; let (tx, rx) = bounded::<Packet>(64); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_HYGIENE);
        assert!(f[0].message.contains("cross-shard"));
    }

    #[test]
    fn cross_shard_channels_flagged_in_rt_without_worker_spawn() {
        // Even inside newtop-rt, owning a cross-shard channel is reserved
        // for the functions that spawn the shard worker threads.
        let f = check(
            "crates/rt/src/lib.rs",
            "fn stash(&mut self) { let shard = self.next_shard; let (tx, rx) = bounded(8); self.queues.push(tx); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cross-shard"));
    }

    #[test]
    fn cross_shard_channels_allowed_for_rt_shard_workers() {
        assert!(check(
            "crates/rt/src/lib.rs",
            "fn spawn_ingress(n: usize) { let shards = n; for k in 0..shards { let (tx, rx) = bounded::<Packet>(64); } std::thread::Builder::new().spawn(move || {}); }",
        )
        .is_empty());
        // Channels with no shard involvement stay governed by the
        // boundedness rule alone.
        assert!(check(
            "crates/net/src/channel.rs",
            "fn mk(&self) { let (tx, rx) = bounded(self.inbox_capacity); }",
        )
        .is_empty());
    }

    #[test]
    fn durability_flags_append_without_reachable_sync() {
        let f = check(
            "crates/dir/src/harness.rs",
            "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage_one(ev); } \
             fn stage_one(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_DURABILITY);
        // The finding anchors at the staging site (the allowlist key),
        // with the acknowledging handler named in the message.
        assert_eq!(f[0].func, "stage_one");
        assert!(f[0].message.contains("on_event"), "{f:?}");
    }

    #[test]
    fn durability_clean_when_sync_reachable_through_commit_point() {
        assert!(check(
            "crates/dir/src/harness.rs",
            "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage_one(ev); self.commit(); } \
             fn stage_one(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } \
             fn commit(&mut self) { self.store.lock().unwrap().sync(self.id); } }",
        )
        .is_empty());
    }

    #[test]
    fn durability_scoped_to_durable_crate_and_handlers() {
        // The same unsynced shape outside the durable crate is not this
        // rule's business.
        let f = check(
            "crates/workloads/src/apps.rs",
            "impl ServerApp { fn on_timer(&mut self) { self.store.lock().unwrap().append(self.id, &rec); } }",
        );
        assert!(f.iter().all(|x| x.rule != RULE_DURABILITY), "{f:?}");
        // A helper nobody's handler reaches is not an acknowledgement
        // point — the store's own internals parse clean.
        assert!(check(
            "crates/dir/src/store.rs",
            "impl DurableStore { fn append(&mut self, node: NodeId, record: &LogRecord) { append_frame(&mut slot.staged, record); } }",
        )
        .is_empty());
    }

    #[test]
    fn lock_hygiene_overapproximates_value_bindings() {
        // `let n = ...lock().len();` binds a usize, not a guard, but the
        // token scan cannot see types: it IS flagged, documenting the
        // known over-approximation (allowlist if it ever appears).
        let f = check(
            "crates/net/src/tcp.rs",
            "fn a(&self) { let n = self.map.lock().len(); self.tx.try_send(n); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_LOCK_HYGIENE);
    }
}
