//! End-to-end protocol tests for the group communication service, run on
//! the deterministic simulator via the testkit harness.

use bytes::Bytes;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId, Liveness, OrderProtocol};
use newtop_gcs::testkit::GcsHarness;
use newtop_net::sim::SimConfig;
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use proptest::prelude::*;
use std::time::Duration;

fn gid() -> GroupId {
    GroupId::new("g")
}

fn payload(tag: &str, i: usize) -> Bytes {
    Bytes::from(format!("{tag}-{i}"))
}

/// All members deliver the same totally-ordered sequence.
fn assert_same_total_order(h: &GcsHarness, members: &[NodeId], expect_len: usize) {
    let reference = h.delivered(members[0], &gid());
    assert_eq!(
        reference.len(),
        expect_len,
        "member {} delivered {} of {expect_len} (repro: seed={})",
        members[0],
        reference.len(),
        h.seed()
    );
    for &m in &members[1..] {
        let got = h.delivered(m, &gid());
        assert_eq!(
            got,
            reference,
            "delivery sequences diverge at {m} (repro: seed={})",
            h.seed()
        );
    }
}

fn run_burst(
    protocol: OrderProtocol,
    liveness: Liveness,
    n_members: usize,
    msgs_per_member: usize,
    cfg: SimConfig,
) -> (GcsHarness, Vec<NodeId>) {
    let mut h = GcsHarness::new(cfg);
    let members = h.add_nodes(Site::Lan, n_members);
    let config = GroupConfig::default()
        .with_ordering(protocol)
        .with_liveness(liveness)
        .with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for (mi, &m) in members.iter().enumerate() {
        for i in 0..msgs_per_member {
            let at = SimTime::from_millis(10 + (i as u64) * 7 + mi as u64);
            h.multicast(
                at,
                m,
                &gid(),
                DeliveryOrder::Total,
                payload(&format!("m{mi}"), i),
            );
        }
    }
    h.run_until(SimTime::from_secs(15));
    (h, members)
}

#[test]
fn symmetric_total_order_agrees_across_members() {
    let (h, members) = run_burst(
        OrderProtocol::Symmetric,
        Liveness::Lively,
        4,
        10,
        SimConfig::lan(11),
    );
    assert_same_total_order(&h, &members, 40);
}

#[test]
fn asymmetric_total_order_agrees_across_members() {
    let (h, members) = run_burst(
        OrderProtocol::Asymmetric,
        Liveness::EventDriven,
        4,
        10,
        SimConfig::lan(12),
    );
    assert_same_total_order(&h, &members, 40);
}

#[test]
fn symmetric_event_driven_still_delivers() {
    // Event-driven groups must wake their null machinery on traffic or
    // symmetric delivery would stall.
    let (h, members) = run_burst(
        OrderProtocol::Symmetric,
        Liveness::EventDriven,
        3,
        5,
        SimConfig::lan(13),
    );
    assert_same_total_order(&h, &members, 15);
}

#[test]
fn total_order_survives_message_loss() {
    let mut cfg = SimConfig::lan(14);
    cfg.drop_probability = 0.05;
    let (h, members) = run_burst(OrderProtocol::Symmetric, Liveness::Lively, 3, 12, cfg);
    assert_same_total_order(&h, &members, 36);
}

#[test]
fn asymmetric_survives_message_loss() {
    let mut cfg = SimConfig::lan(15);
    cfg.drop_probability = 0.05;
    let (h, members) = run_burst(OrderProtocol::Asymmetric, Liveness::Lively, 3, 12, cfg);
    assert_same_total_order(&h, &members, 36);
}

#[test]
fn total_order_survives_duplication() {
    let mut cfg = SimConfig::lan(16);
    cfg.duplicate_probability = 0.2;
    let (h, members) = run_burst(OrderProtocol::Symmetric, Liveness::Lively, 3, 10, cfg);
    assert_same_total_order(&h, &members, 30);
}

#[test]
fn causal_multicasts_deliver_everywhere() {
    let mut h = GcsHarness::new(SimConfig::lan(17));
    let members = h.add_nodes(Site::Lan, 3);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for i in 0..5 {
        h.multicast(
            SimTime::from_millis(10 + i * 5),
            members[0],
            &gid(),
            DeliveryOrder::Causal,
            payload("c", i as usize),
        );
    }
    h.run_until(SimTime::from_secs(3));
    for &m in &members {
        let got = h.delivered(m, &gid());
        assert_eq!(got.len(), 5, "member {m} (repro: seed={})", h.seed());
        // FIFO from a single sender.
        for (i, (sender, p)) in got.iter().enumerate() {
            assert_eq!(*sender, members[0]);
            assert_eq!(p, &payload("c", i));
        }
    }
}

#[test]
fn crash_triggers_view_change_and_survivors_agree() {
    let mut h = GcsHarness::new(SimConfig::lan(18));
    let members = h.add_nodes(Site::Lan, 4);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    // Traffic before, during and after the crash.
    for i in 0..20 {
        h.multicast(
            SimTime::from_millis(10 + i * 10),
            members[1],
            &gid(),
            DeliveryOrder::Total,
            payload("pre", i as usize),
        );
    }
    h.sim.schedule_crash(SimTime::from_millis(100), members[3]);
    h.run_until(SimTime::from_secs(10));

    let survivors = &members[..3];
    for &m in survivors {
        let views = h.views(m, &gid());
        let last = views.last().expect("views installed");
        assert_eq!(
            last.len(),
            3,
            "crashed member excluded at {m} (repro: seed={})",
            h.seed()
        );
        assert!(!last.contains(members[3]));
    }
    // Virtual synchrony: all survivors delivered the same sequence.
    let reference = h.delivered(members[0], &gid());
    assert_eq!(reference.len(), 20, "repro: seed={}", h.seed());
    for &m in &survivors[1..] {
        assert_eq!(
            h.delivered(m, &gid()),
            reference,
            "diverges at {m} (repro: seed={})",
            h.seed()
        );
    }
}

#[test]
fn sequencer_crash_elects_replacement_and_recovers() {
    let mut h = GcsHarness::new(SimConfig::lan(19));
    let members = h.add_nodes(Site::Lan, 3);
    // Asymmetric: members[0] (lowest id) is the sequencer.
    let config = GroupConfig::default()
        .with_ordering(OrderProtocol::Asymmetric)
        .with_liveness(Liveness::Lively)
        .with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for i in 0..10 {
        h.multicast(
            SimTime::from_millis(10 + i * 8),
            members[1],
            &gid(),
            DeliveryOrder::Total,
            payload("a", i as usize),
        );
    }
    h.sim.schedule_crash(SimTime::from_millis(50), members[0]);
    // Post-crash traffic must still get ordered by the new sequencer.
    for i in 0..10 {
        h.multicast(
            SimTime::from_millis(600 + i * 8),
            members[2],
            &gid(),
            DeliveryOrder::Total,
            payload("b", i as usize),
        );
    }
    h.run_until(SimTime::from_secs(10));
    let d1 = h.delivered(members[1], &gid());
    let d2 = h.delivered(members[2], &gid());
    assert_eq!(d1, d2, "survivors agree (repro: seed={})", h.seed());
    // All post-crash messages delivered (pre-crash ones may be partially
    // lost with the sequencer, but whatever survives is common).
    let b_count = d1.iter().filter(|(s, _)| *s == members[2]).count();
    assert_eq!(b_count, 10, "repro: seed={}", h.seed());
    let last_view = h.views(members[1], &gid()).last().unwrap().clone();
    assert_eq!(last_view.sequencer(), Some(members[1]));
}

#[test]
fn graceful_leave_installs_smaller_view() {
    let mut h = GcsHarness::new(SimConfig::lan(20));
    let members = h.add_nodes(Site::Lan, 3);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    h.leave(SimTime::from_millis(100), members[2], &gid());
    h.run_until(SimTime::from_secs(5));
    for &m in &members[..2] {
        let last = h.views(m, &gid()).last().unwrap().clone();
        assert_eq!(
            last.members(),
            &members[..2],
            "at {m} (repro: seed={})",
            h.seed()
        );
    }
    // The leaver saw its own departure.
    assert!(h
        .node(members[2])
        .outputs
        .iter()
        .any(|(_, o)| matches!(o, newtop_gcs::member::GcsOutput::LeftGroup { .. })));
}

#[test]
fn join_expands_the_view_and_new_member_participates() {
    let mut h = GcsHarness::new(SimConfig::lan(21));
    let members = h.add_nodes(Site::Lan, 3);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    // Only the first two create the group.
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members[..2]);
    h.join(
        SimTime::from_millis(50),
        members[2],
        &gid(),
        &config,
        members[0],
    );
    // Traffic after the join settles.
    for i in 0..5 {
        h.multicast(
            SimTime::from_millis(800 + i * 10),
            members[2],
            &gid(),
            DeliveryOrder::Total,
            payload("j", i as usize),
        );
    }
    h.run_until(SimTime::from_secs(5));
    for &m in &members {
        let last = h.views(m, &gid()).last().unwrap().clone();
        assert_eq!(last.len(), 3, "all three in the view at {m}");
    }
    // Everyone (including the joiner) delivered the joiner's multicasts.
    for &m in &members {
        let from_joiner = h
            .delivered(m, &gid())
            .iter()
            .filter(|(s, _)| *s == members[2])
            .count();
        assert_eq!(from_joiner, 5, "at {m}");
    }
}

#[test]
fn partition_forms_disjoint_views() {
    let mut h = GcsHarness::new(SimConfig::lan(22));
    let members = h.add_nodes(Site::Lan, 4);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    h.sim.schedule_partition(
        SimTime::from_millis(100),
        vec![vec![members[0], members[1]], vec![members[2], members[3]]],
    );
    h.run_until(SimTime::from_secs(10));
    let side_a = h.views(members[0], &gid()).last().unwrap().clone();
    let side_b = h.views(members[2], &gid()).last().unwrap().clone();
    assert_eq!(side_a.members(), &[members[0], members[1]]);
    assert_eq!(side_b.members(), &[members[2], members[3]]);
}

#[test]
fn overlapping_groups_share_one_member() {
    let ga = GroupId::new("ga");
    let gb = GroupId::new("gb");
    let mut h = GcsHarness::new(SimConfig::lan(23));
    let nodes = h.add_nodes(Site::Lan, 3);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    // Node 1 belongs to both groups (overlapping membership).
    h.create_group(SimTime::from_millis(1), &ga, &config, &nodes[..2]);
    h.create_group(SimTime::from_millis(1), &gb, &config, &nodes[1..]);
    for i in 0..5 {
        h.multicast(
            SimTime::from_millis(20 + i * 9),
            nodes[0],
            &ga,
            DeliveryOrder::Total,
            payload("a", i as usize),
        );
        h.multicast(
            SimTime::from_millis(24 + i * 9),
            nodes[2],
            &gb,
            DeliveryOrder::Total,
            payload("b", i as usize),
        );
    }
    h.run_until(SimTime::from_secs(5));
    assert_eq!(h.delivered(nodes[0], &ga).len(), 5);
    assert_eq!(h.delivered(nodes[1], &ga).len(), 5);
    assert_eq!(h.delivered(nodes[1], &gb).len(), 5);
    assert_eq!(h.delivered(nodes[2], &gb).len(), 5);
    assert_eq!(h.delivered(nodes[0], &ga), h.delivered(nodes[1], &ga));
    assert_eq!(h.delivered(nodes[1], &gb), h.delivered(nodes[2], &gb));
}

#[test]
fn wan_distribution_still_agrees() {
    let mut h = GcsHarness::new(SimConfig::internet(24));
    let a = h.add_nodes(Site::Newcastle, 1)[0];
    let b = h.add_nodes(Site::London, 1)[0];
    let c = h.add_nodes(Site::Pisa, 1)[0];
    let members = vec![a, b, c];
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(30));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for (mi, &m) in members.iter().enumerate() {
        for i in 0..6 {
            h.multicast(
                SimTime::from_millis(20 + i * 15 + mi as u64 * 3),
                m,
                &gid(),
                DeliveryOrder::Total,
                payload(&format!("w{mi}"), i as usize),
            );
        }
    }
    h.run_until(SimTime::from_secs(20));
    assert_same_total_order(&h, &members, 18);
}

#[test]
fn event_driven_group_goes_quiet_after_traffic() {
    let mut h = GcsHarness::new(SimConfig::lan(25));
    let members = h.add_nodes(Site::Lan, 3);
    let config = GroupConfig::request_reply().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    h.multicast(
        SimTime::from_millis(10),
        members[0],
        &gid(),
        DeliveryOrder::Total,
        payload("x", 0),
    );
    // Run far past delivery: the time-silence machinery must shut down,
    // so the event count stops growing.
    h.run_until(SimTime::from_secs(2));
    let events_at_2s = h.sim.events_processed();
    h.run_until(SimTime::from_secs(20));
    let events_at_20s = h.sim.events_processed();
    assert_eq!(
        events_at_2s, events_at_20s,
        "an event-driven group must quiesce"
    );
    assert_same_total_order(&h, &members, 1);
}

#[test]
fn lively_group_keeps_heartbeating() {
    let mut h = GcsHarness::new(SimConfig::lan(26));
    let members = h.add_nodes(Site::Lan, 2);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    h.run_until(SimTime::from_secs(1));
    let events_1s = h.sim.events_processed();
    h.run_until(SimTime::from_secs(2));
    assert!(
        h.sim.events_processed() > events_1s,
        "lively groups never quiesce"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under arbitrary loss, duplication and seeds, every member delivers
    /// the identical totally-ordered sequence.
    #[test]
    fn prop_total_order_is_identical_under_faults(
        seed in 0u64..5000,
        drop in 0.0f64..0.15,
        dup in 0.0f64..0.15,
        symmetric in any::<bool>(),
        n_members in 2usize..5,
        msgs in 1usize..8,
    ) {
        let mut cfg = SimConfig::lan(seed);
        cfg.drop_probability = drop;
        cfg.duplicate_probability = dup;
        let protocol = if symmetric { OrderProtocol::Symmetric } else { OrderProtocol::Asymmetric };
        let (h, members) = run_burst(protocol, Liveness::Lively, n_members, msgs, cfg);
        let reference = h.delivered(members[0], &gid());
        prop_assert_eq!(reference.len(), msgs * n_members);
        for &m in &members[1..] {
            prop_assert_eq!(h.delivered(m, &gid()), reference.clone());
        }
    }
}

#[test]
fn two_simultaneous_crashes_leave_an_agreeing_majority() {
    let mut h = GcsHarness::new(SimConfig::lan(27));
    let members = h.add_nodes(Site::Lan, 5);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for i in 0..30 {
        h.multicast(
            SimTime::from_millis(10 + i * 8),
            members[(i % 3) as usize],
            &gid(),
            DeliveryOrder::Total,
            payload("m", i as usize),
        );
    }
    // Two members die at the same instant, one of them the sequencer.
    h.sim.schedule_crash(SimTime::from_millis(90), members[0]);
    h.sim.schedule_crash(SimTime::from_millis(90), members[4]);
    h.run_until(SimTime::from_secs(10));

    let survivors = [members[1], members[2], members[3]];
    let reference = h.delivered(survivors[0], &gid());
    for &m in &survivors[1..] {
        assert_eq!(h.delivered(m, &gid()), reference, "survivors agree at {m}");
    }
    for &m in &survivors {
        let last = h.views(m, &gid()).last().unwrap().clone();
        assert_eq!(last.members(), &survivors[..], "final view at {m}");
    }
}

#[test]
fn crash_under_message_loss_still_reaches_agreement() {
    let mut cfg = SimConfig::lan(28);
    cfg.drop_probability = 0.05;
    let mut h = GcsHarness::new(cfg);
    let members = h.add_nodes(Site::Lan, 4);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for i in 0..40 {
        h.multicast(
            SimTime::from_millis(10 + i * 6),
            members[(i % 4) as usize],
            &gid(),
            DeliveryOrder::Total,
            payload("x", i as usize),
        );
    }
    h.sim.schedule_crash(SimTime::from_millis(120), members[3]);
    h.run_until(SimTime::from_secs(15));

    let survivors = &members[..3];
    let reference = h.delivered(survivors[0], &gid());
    // Everything from live senders (members 0..2, 30 messages) survives;
    // the crashed member's in-flight messages may or may not, but the
    // survivors must agree on the whole sequence either way.
    let from_live = reference
        .iter()
        .filter(|(s, _)| survivors.contains(s))
        .count();
    assert_eq!(from_live, 30, "no live sender's message lost");
    for &m in &survivors[1..] {
        assert_eq!(h.delivered(m, &gid()), reference, "agreement at {m}");
    }
    for &m in survivors {
        let last = h.views(m, &gid()).last().unwrap().clone();
        assert_eq!(last.len(), 3);
    }
}

#[test]
fn coordinator_crash_during_view_change_recovers() {
    // members[0] is both sequencer and the view-change coordinator.
    // Crash members[3] to start a view change, then kill the coordinator
    // shortly after — the next-ranked member must take over.
    let mut h = GcsHarness::new(SimConfig::lan(29));
    let members = h.add_nodes(Site::Lan, 4);
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    for i in 0..10 {
        h.multicast(
            SimTime::from_millis(10 + i * 8),
            members[1],
            &gid(),
            DeliveryOrder::Total,
            payload("c", i as usize),
        );
    }
    h.sim.schedule_crash(SimTime::from_millis(100), members[3]);
    // Suspicion timeout is 20ms * 14 = 280ms; the change starts around
    // t=380ms. Kill the coordinator just after it begins.
    h.sim.schedule_crash(SimTime::from_millis(390), members[0]);
    h.run_until(SimTime::from_secs(15));

    let survivors = [members[1], members[2]];
    for &m in &survivors {
        let last = h.views(m, &gid()).last().unwrap().clone();
        assert_eq!(last.members(), &survivors[..], "at {m}");
    }
    assert_eq!(
        h.delivered(survivors[0], &gid()),
        h.delivered(survivors[1], &gid())
    );
}

#[test]
fn sequencer_kill_mid_stream_preserves_total_order_prefix() {
    // Regression for the campaign's seq-kill cell: under the asymmetric
    // protocol, killing the sequencer while total-order traffic is in
    // flight must leave the survivors in agreement after the view
    // change — pairwise, one delivery sequence is a prefix of the other,
    // and the stream sent after the change is fully delivered.
    use newtop_net::faults::FaultPlan;

    let mut h = GcsHarness::new(SimConfig::lan(30));
    let members = h.add_nodes(Site::Lan, 4);
    let config = GroupConfig::default()
        .with_ordering(OrderProtocol::Asymmetric)
        .with_liveness(Liveness::Lively)
        .with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &gid(), &config, &members);
    let plan = FaultPlan::named("seq-kill").kill_sequencer(Duration::from_millis(80));
    plan.apply(&mut h.sim, &members);
    // Streams from two senders straddle the kill; a third starts only
    // after the replacement sequencer must be in charge.
    for i in 0..12 {
        h.multicast(
            SimTime::from_millis(10 + i * 12),
            members[1],
            &gid(),
            DeliveryOrder::Total,
            payload("a", i as usize),
        );
        h.multicast(
            SimTime::from_millis(14 + i * 12),
            members[2],
            &gid(),
            DeliveryOrder::Total,
            payload("b", i as usize),
        );
    }
    for i in 0..8 {
        h.multicast(
            SimTime::from_millis(600 + i * 10),
            members[3],
            &gid(),
            DeliveryOrder::Total,
            payload("post", i as usize),
        );
    }
    h.run_until(SimTime::from_secs(10));

    let repro = format!("seed={} plan \"{plan}\"", h.seed());
    let survivors = &members[1..];
    for &m in survivors {
        let last = h.views(m, &gid()).last().unwrap().clone();
        assert_eq!(last.members(), survivors, "post-kill view at {m} ({repro})");
    }
    let seqs: Vec<_> = survivors.iter().map(|&m| h.delivered(m, &gid())).collect();
    for (i, a) in seqs.iter().enumerate() {
        for b in &seqs[i + 1..] {
            let shorter = a.len().min(b.len());
            assert_eq!(
                &a[..shorter],
                &b[..shorter],
                "total-order prefixes diverge ({repro})"
            );
        }
    }
    // Everything multicast after the view change is delivered everywhere.
    for (&m, seq) in survivors.iter().zip(&seqs) {
        let post = seq.iter().filter(|(s, _)| *s == members[3]).count();
        assert_eq!(post, 8, "post-change stream incomplete at {m} ({repro})");
    }
}
