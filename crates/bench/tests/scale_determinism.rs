//! Determinism regressions for the scale sweep (PR 8 satellite):
//! the capacity table is a pure function of the campaign seed, and the
//! arrival schedule does not depend on the shard count.

use newtop_bench::scale::{cells, render_json, run_sweep, search_cell, SweepConfig};

fn tiny(seed: u64) -> SweepConfig {
    // A single-region, short-ladder sweep so the whole test stays fast
    // while exercising the full search and rendering paths. The window
    // must hold enough arrivals (~100 per probe) that a single
    // completion sliding across the window edge cannot flip a probe's
    // sustainability verdict between shard counts.
    SweepConfig {
        start_clients: 8_000,
        max_clients: 16_000,
        duration: std::time::Duration::from_millis(2_000),
        ..SweepConfig::smoke(seed)
    }
}

#[test]
fn same_seed_reproduces_the_sweep_byte_for_byte() {
    let cfg = tiny(2000);
    let a = render_json(&cfg, &run_sweep(&cfg));
    let b = render_json(&cfg, &run_sweep(&cfg));
    assert_eq!(a, b, "same seed, same config: JSON must be identical");
    // And a different seed must actually change something (the digest
    // at minimum) — otherwise the identity above is vacuous.
    let other = tiny(2001);
    let c = render_json(&other, &run_sweep(&other));
    assert_ne!(a, c, "different seeds produced identical sweeps");
}

#[test]
fn capacity_table_is_shard_count_invariant() {
    let mut one = tiny(7);
    one.shards = 1;
    let mut four = tiny(7);
    four.shards = 4;
    let a = run_sweep(&one);
    let b = run_sweep(&four);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        // The arrival schedule is timer-driven and must not see the
        // shard count at all; the searched capacity (a function of
        // deliveries, which the shard-determinism oracle in
        // `newtop-check` already pins) must agree too.
        assert_eq!(
            x.measured.arrival_digest, y.measured.arrival_digest,
            "arrival digest diverged between shards=1 and shards=4"
        );
        assert_eq!(
            x.capacity,
            y.capacity,
            "capacity for {}/{}/{}/{} diverged between shard counts",
            x.spec.region.label(),
            x.spec.ordering_label(),
            x.spec.binding_label(),
            x.spec.mode_label()
        );
        assert_eq!(x.probes, y.probes);
    }
}

#[test]
fn search_stops_at_the_ladder_ceiling() {
    // With a generous bound the small cell is sustainable all the way to
    // max_clients: the search must terminate there, not loop.
    let cfg = SweepConfig {
        p99_bound: std::time::Duration::from_secs(30),
        ..tiny(11)
    };
    let spec = &cells(&cfg)[0];
    let outcome = search_cell(&cfg, 0, spec);
    assert_eq!(outcome.capacity, cfg.max_clients);
}
