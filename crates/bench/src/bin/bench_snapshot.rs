//! One-shot performance snapshot for the encode-once fan-out PR.
//!
//! Prints a JSON document with the two numbers the PR's acceptance
//! criteria track:
//!
//! * closed-group LAN request-reply latency (EXPERIMENTS.md anchors:
//!   NewTop LAN call 3.71 ms, closed 1-client 3.2 ms) — regression
//!   guard that the zero-copy refactor did not slow the end-to-end
//!   invocation path;
//! * fan-out encode throughput of the encode-once hot path against the
//!   per-recipient baseline it replaced, over a 5-member group.
//!
//! `scripts/bench_snapshot.sh` redirects this into `BENCH_PR2.json`.
//! `NEWTOP_BENCH_SEED` varies the simulation seed (default 2000).

use std::time::Instant;

use bytes::Bytes;
use newtop_bench::bench_seed;
use newtop_gcs::clock::DepsVector;
use newtop_gcs::group::{DeliveryOrder, GroupId};
use newtop_gcs::messages::{DataMsg, GcsMessage};
use newtop_gcs::view::ViewId;
use newtop_gcs::{GCS_OPERATION, NSO_OBJECT_KEY};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_orb::cdr::CdrEncode;
use newtop_orb::giop::GiopMessage;
use newtop_orb::ior::ObjectKey;
use newtop_orb::orb::OrbCore;
use newtop_workloads::scenario::{
    run_request_reply, BindingPolicy, Placement, RequestReplyScenario,
};

const GROUP_SIZE: u32 = 5;
const PAYLOAD: usize = 256;
const ITERS: u64 = 200_000;

fn n(i: u32) -> NodeId {
    NodeId::from_index(i)
}

fn wire_msg() -> GcsMessage {
    GcsMessage::Data(
        DataMsg {
            group: GroupId::new("bench"),
            view: ViewId(1),
            sender: n(0),
            seq: 9,
            lamport: 100,
            order: DeliveryOrder::Total,
            deps: DepsVector::from_pairs([(n(1), 8), (n(2), 8)]),
            acks: vec![(n(1), 8), (n(2), 8)],
            payload: Bytes::from(vec![0x5A; PAYLOAD]),
        }
        .into(),
    )
}

/// Fan-outs per second on the encode-once hot path (one body encode, one
/// frame, `GROUP_SIZE - 1` refcount clones per iteration).
fn measure_encode_once(msg: &GcsMessage) -> f64 {
    let targets: Vec<NodeId> = (1..GROUP_SIZE).map(n).collect();
    let mut orb = OrbCore::new(n(0));
    let mut sink = 0usize;
    let start = Instant::now();
    for _ in 0..ITERS {
        let mut out = Outbox::detached(0);
        let enc = orb.scratch_encoder();
        enc.clear();
        msg.encode(enc);
        let body = enc.take_frame();
        orb.oneway_fanout(
            targets.iter().copied(),
            &ObjectKey::new(NSO_OBJECT_KEY),
            GCS_OPERATION,
            &body,
            &mut out,
        );
        sink += out.into_parts().sends.len();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(sink as u64, ITERS * u64::from(GROUP_SIZE - 1));
    ITERS as f64 / secs
}

/// Fan-outs per second re-encoding body and frame for every recipient —
/// what the code did before this optimisation.
fn measure_per_recipient(msg: &GcsMessage) -> f64 {
    let targets: Vec<NodeId> = (1..GROUP_SIZE).map(n).collect();
    let mut sink = 0usize;
    let start = Instant::now();
    for _ in 0..ITERS {
        let mut out = Outbox::detached(0);
        for &t in &targets {
            let frame = GiopMessage::Request {
                request_id: 1,
                object_key: ObjectKey::new(NSO_OBJECT_KEY),
                operation: GCS_OPERATION.to_owned(),
                response_expected: false,
                body: msg.to_cdr(),
            }
            .to_frame();
            out.send(t, frame);
        }
        sink += out.into_parts().sends.len();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(sink as u64, ITERS * u64::from(GROUP_SIZE - 1));
    ITERS as f64 / secs
}

fn main() {
    let seed = bench_seed();

    // LAN closed-group invocation latency, 1 client (anchor: 3.2 ms,
    // must stay under the 3.71 ms NewTop LAN anchor).
    let closed = run_request_reply(&RequestReplyScenario {
        binding: BindingPolicy::Closed,
        ..RequestReplyScenario::paper_default(Placement::AllLan, 1, seed)
    });
    let closed_ms = closed.mean_response.as_secs_f64() * 1e3;

    let msg = wire_msg();
    let once = measure_encode_once(&msg);
    let per_recipient = measure_per_recipient(&msg);

    println!("{{");
    println!("  \"pr\": 2,");
    println!("  \"seed\": {seed},");
    println!("  \"lan_closed_group\": {{");
    println!("    \"clients\": 1,");
    println!("    \"mean_response_ms\": {closed_ms:.3},");
    println!("    \"completed\": {},", closed.completed);
    println!("    \"anchor_ms\": 3.71");
    println!("  }},");
    println!("  \"fanout_encode\": {{");
    println!("    \"group_size\": {GROUP_SIZE},");
    println!("    \"payload_bytes\": {PAYLOAD},");
    println!("    \"encode_once_fanouts_per_sec\": {once:.0},");
    println!("    \"per_recipient_fanouts_per_sec\": {per_recipient:.0},");
    println!("    \"speedup\": {:.2}", once / per_recipient);
    println!("  }}");
    println!("}}");
}
