//! Peer participation: a three-way conference (the paper's motivating
//! GroupWare scenario — teleconferencing, shared whiteboards, IRC),
//! running on the threaded runtime over the in-process transport.
//!
//! Each participant multicasts chat lines with the one-way send
//! primitive; the symmetric total-order protocol guarantees everyone sees
//! the conversation in exactly the same order, which the example checks
//! by comparing transcripts.
//!
//! ```text
//! cargo run -p newtop-examples --bin conference
//! ```

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::NsoOutput;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_net::channel::ChannelNetwork;
use newtop_net::site::NodeId;
use newtop_rt::{NodeHandle, NodeRuntime, RuntimeOptions};

fn main() {
    let room = GroupId::new("conference-room");
    let net = ChannelNetwork::new();
    let members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let names = ["alice", "bob", "carol"];

    let handles: Vec<NodeHandle> = members
        .iter()
        .map(|&id| {
            let (transport, rx) = net.endpoint(id);
            let handle = NodeRuntime::spawn(transport, rx, RuntimeOptions::new());
            let room = room.clone();
            let all = members.clone();
            handle.with_nso(move |nso, now, out| {
                nso.create_peer_group(
                    room,
                    all,
                    GroupConfig::peer().with_time_silence(Duration::from_millis(20)),
                    now,
                    out,
                )
                .expect("create room");
            });
            handle
        })
        .collect();
    println!("three participants joined the conference (symmetric ordering, lively group)\n");

    // Everyone talks, interleaved.
    let lines = [
        (0usize, "hi all"),
        (1, "hey alice"),
        (2, "morning!"),
        (0, "shall we review the agenda?"),
        (2, "yes - item one first"),
        (1, "agreed"),
    ];
    for &(who, text) in &lines {
        let room = room.clone();
        let body = format!("{}: {}", names[who], text);
        handles[who].with_nso(move |nso, now, out| {
            let peer = nso.handle_for(&room).expect("room handle");
            peer.send(nso, Bytes::from(body), DeliveryOrder::Total, now, out)
                .expect("send");
        });
        // Small gap so the conversation reads naturally.
        std::thread::sleep(Duration::from_millis(10));
    }

    // Collect each participant's transcript.
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for handle in &handles {
        let mut transcript = Vec::new();
        while transcript.len() < lines.len() {
            let o = handle
                .wait_for_output(Duration::from_secs(10), |o| {
                    matches!(o, NsoOutput::PeerDeliver { .. })
                })
                .expect("delivery");
            if let NsoOutput::PeerDeliver { payload, .. } = o {
                transcript.push(String::from_utf8_lossy(&payload).into_owned());
            }
        }
        transcripts.push(transcript);
    }

    println!("alice's transcript:");
    for line in &transcripts[0] {
        println!("  {line}");
    }
    for (i, t) in transcripts.iter().enumerate().skip(1) {
        assert_eq!(t, &transcripts[0], "{}'s transcript diverged", names[i]);
    }
    println!(
        "\nall {} transcripts identical (causality-preserving total order)",
        names.len()
    );

    for h in handles {
        h.shutdown();
    }
}
