//! Memoized per-file parse cache.
//!
//! The analyzer runs inside every `check.sh` invocation, twice (self-
//! test + gate), so the lex/parse of ~60 workspace files must stay well
//! under the ~5 s budget. Tokens for each file are cached under
//! `<root>/target/analyze-cache/`, keyed by an FNV-1a hash of the
//! file's path and contents: an unchanged file deserializes its token
//! stream instead of re-lexing, and item extraction re-runs over the
//! cached tokens (it is cheap and keeps exactly one source of truth for
//! parsing logic). A corrupt or unreadable cache entry silently falls
//! back to a fresh lex — the cache can never change results, only
//! speed.

use crate::lexer::{lex, TokKind, Token};
use std::fs;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A handle to the on-disk cache; `None` dir disables it (`--no-cache`).
pub struct ParseCache {
    dir: Option<PathBuf>,
    /// Files whose tokens came from the cache this run.
    pub hits: usize,
    /// Files that were lexed fresh this run.
    pub misses: usize,
}

impl ParseCache {
    /// Cache rooted at `<root>/target/analyze-cache`, or disabled.
    #[must_use]
    pub fn new(root: &Path, enabled: bool) -> Self {
        ParseCache {
            dir: enabled.then(|| root.join("target").join("analyze-cache")),
            hits: 0,
            misses: 0,
        }
    }

    /// Tokens for `src` (a file at workspace-relative `rel`), from cache
    /// when possible.
    pub fn tokens(&mut self, rel: &str, src: &str) -> Vec<Token> {
        let Some(dir) = self.dir.clone() else {
            self.misses += 1;
            return lex(src);
        };
        let mut keyed = rel.as_bytes().to_vec();
        keyed.push(0);
        keyed.extend_from_slice(src.as_bytes());
        let path = dir.join(format!("{:016x}.tok", fnv1a(&keyed)));
        if let Ok(text) = fs::read_to_string(&path) {
            if let Some(toks) = deserialize(&text) {
                self.hits += 1;
                return toks;
            }
        }
        self.misses += 1;
        let toks = lex(src);
        // Best-effort write; a read-only target/ just means no cache.
        if fs::create_dir_all(&dir).is_ok() {
            let _ = fs::write(&path, serialize(&toks));
        }
        toks
    }
}

const VERSION_LINE: &str = "newtop-analyze-cache v1";

fn serialize(toks: &[Token]) -> String {
    let mut out = String::with_capacity(toks.len() * 12);
    out.push_str(VERSION_LINE);
    out.push('\n');
    for t in toks {
        let k = match t.kind {
            TokKind::Ident => 'I',
            TokKind::Punct => 'P',
            TokKind::Lit => 'L',
            TokKind::Attr => 'A',
        };
        out.push(k);
        out.push_str(&t.line.to_string());
        out.push(' ');
        // Attr interiors may span lines; escape so one token stays one
        // cache line.
        for c in t.text.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('\n');
    }
    out
}

fn deserialize(text: &str) -> Option<Vec<Token>> {
    let mut lines = text.lines();
    if lines.next() != Some(VERSION_LINE) {
        return None;
    }
    let mut toks = Vec::new();
    for line in lines {
        let mut chars = line.chars();
        let kind = match chars.next()? {
            'I' => TokKind::Ident,
            'P' => TokKind::Punct,
            'L' => TokKind::Lit,
            'A' => TokKind::Attr,
            _ => return None,
        };
        let rest = chars.as_str();
        let sp = rest.find(' ')?;
        let line_no: u32 = rest[..sp].parse().ok()?;
        let mut text = String::new();
        let mut esc = rest[sp + 1..].chars();
        while let Some(c) = esc.next() {
            if c == '\\' {
                match esc.next()? {
                    'n' => text.push('\n'),
                    '\\' => text.push('\\'),
                    _ => return None,
                }
            } else {
                text.push(c);
            }
        }
        toks.push(Token {
            kind,
            text,
            line: line_no,
        });
    }
    Some(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_tokens() {
        let src = "fn f() { let s = \"multi\\nline\"; x.lock(); }\n#[cfg(test)]\nmod t {}";
        let toks = lex(src);
        let back = deserialize(&serialize(&toks)).expect("roundtrip");
        assert_eq!(toks.len(), back.len());
        for (a, b) in toks.iter().zip(&back) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.text, b.text);
            assert_eq!(a.line, b.line);
        }
    }

    #[test]
    fn corrupt_entries_are_rejected() {
        assert!(deserialize("garbage").is_none());
        assert!(deserialize("newtop-analyze-cache v1\nXbad").is_none());
    }

    #[test]
    fn cache_hits_after_first_parse() {
        let tmp =
            std::env::temp_dir().join(format!("newtop-analyze-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        let mut cache = ParseCache::new(&tmp, true);
        let src = "fn f() { g(); }";
        let first = cache.tokens("crates/x/src/lib.rs", src);
        assert_eq!((cache.hits, cache.misses), (0, 1));
        let second = cache.tokens("crates/x/src/lib.rs", src);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(first.len(), second.len());
        // Changed contents miss (different key), as does a different path.
        cache.tokens("crates/x/src/lib.rs", "fn f() { h(); }");
        assert_eq!(cache.misses, 2);
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn disabled_cache_always_lexes() {
        let mut cache = ParseCache::new(Path::new("/nonexistent"), false);
        cache.tokens("a.rs", "fn f() {}");
        cache.tokens("a.rs", "fn f() {}");
        assert_eq!((cache.hits, cache.misses), (0, 2));
    }
}
