/root/repo/target/debug/deps/newtop_integration-dfdd1c6103214395.d: tests/src/lib.rs

/root/repo/target/debug/deps/libnewtop_integration-dfdd1c6103214395.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libnewtop_integration-dfdd1c6103214395.rmeta: tests/src/lib.rs

tests/src/lib.rs:
