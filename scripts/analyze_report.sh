#!/usr/bin/env bash
# Pretty-prints a newtop-analyze JSON report (the file check.sh leaves at
# target/analyze-report.json, or any file produced with --json).
#
#   scripts/analyze_report.sh [report.json]
#
# Output: one line per finding, grouped by rule, plus the warning list
# and a per-rule tally. Plain POSIX-ish tooling only (python3 is in the
# toolchain image); no jq dependency.
set -euo pipefail

REPORT="${1:-target/analyze-report.json}"
if [ ! -f "$REPORT" ]; then
    echo "analyze_report: $REPORT not found" >&2
    echo "  (run scripts/check.sh, or: cargo run -p newtop-analyze -- --json $REPORT)" >&2
    exit 2
fi

python3 - "$REPORT" <<'PY'
import json
import sys
from collections import Counter

with open(sys.argv[1], encoding="utf-8") as fh:
    report = json.load(fh)

findings = report.get("findings", [])
warnings = report.get("warnings", [])

if not findings:
    print("no findings" + (f" ({len(warnings)} warning(s))" if warnings else ""))
else:
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f["rule"], []).append(f)
    for rule in sorted(by_rule):
        print(f"{rule} ({len(by_rule[rule])}):")
        for f in sorted(by_rule[rule], key=lambda f: (f["file"], f["line"])):
            print(f"  {f['file']}:{f['line']} in {f['fn']}")
            print(f"    {f['message']}")
            print(f"    id: {f['id']}")
    tally = Counter(f["rule"] for f in findings)
    summary = ", ".join(f"{n} {rule}" for rule, n in sorted(tally.items()))
    print(f"total: {len(findings)} finding(s) — {summary}")

for w in warnings:
    print(f"warning: {w}")
PY
