//! The per-node append-only durable log: CRC-framed, CDR-encoded
//! records.
//!
//! Every frame is `len: u32 | crc: u32 | payload` (big-endian header,
//! CDR payload). `len` counts payload bytes only and is capped at
//! [`MAX_RECORD`]; `crc` is the IEEE CRC-32 of the payload. A reader
//! that finds a short frame, an oversized length, a checksum mismatch
//! or an undecodable payload reports a typed [`LogError`] — it never
//! panics, and it never silently skips: a torn tail means the log ends
//! there.

use std::fmt;

use bytes::Bytes;

use newtop::directory::GroupRecord;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_gcs::view::View;
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

/// Largest accepted frame payload (1 MiB): far above any real record,
/// low enough that a corrupt length field cannot drive allocation.
pub const MAX_RECORD: usize = 1 << 20;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/ethernet polynomial) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Why a durable log or snapshot failed to read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// The buffer ends inside a frame header or payload.
    Truncated,
    /// A frame header claims a payload larger than [`MAX_RECORD`].
    Oversized(u32),
    /// The payload checksum does not match its header.
    BadCrc {
        /// Checksum the header carries.
        expected: u32,
        /// Checksum of the bytes actually present.
        actual: u32,
    },
    /// The payload passed its checksum but failed CDR decoding.
    Cdr(CdrError),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Truncated => write!(f, "log frame truncated"),
            LogError::Oversized(n) => write!(f, "log frame claims {n} bytes (cap {MAX_RECORD})"),
            LogError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "log frame crc mismatch: header {expected:#x}, payload {actual:#x}"
                )
            }
            LogError::Cdr(e) => write!(f, "log frame payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<CdrError> for LogError {
    fn from(e: CdrError) -> Self {
        LogError::Cdr(e)
    }
}

/// One delivered multicast as the durable log remembers it — enough to
/// reproduce the delivery byte-for-byte on replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveredRec {
    /// The multicasting member.
    pub sender: NodeId,
    /// The guarantee it was sent with.
    pub order: DeliveryOrder,
    /// Its Lamport timestamp.
    pub lamport: u64,
    /// The application payload.
    pub payload: Bytes,
}

impl CdrEncode for DeliveredRec {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.sender.encode(enc);
        enc.write_u8(match self.order {
            DeliveryOrder::Causal => 0,
            DeliveryOrder::Total => 1,
        });
        enc.write_u64(self.lamport);
        enc.write_bytes(&self.payload);
    }
}

impl CdrDecode for DeliveredRec {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let sender = NodeId::decode(dec)?;
        let order = match dec.read_u8()? {
            0 => DeliveryOrder::Causal,
            1 => DeliveryOrder::Total,
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        };
        Ok(DeliveredRec {
            sender,
            order,
            lamport: dec.read_u64()?,
            payload: Bytes::from(dec.read_bytes()?),
        })
    }
}

/// One durable log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// The node created or joined a group with this configuration.
    Created {
        /// Group concerned.
        group: GroupId,
        /// Its configuration.
        config: GroupConfig,
        /// Membership known at creation (empty for a join).
        members: Vec<NodeId>,
    },
    /// A multicast was delivered locally.
    Delivered {
        /// Group it was delivered in.
        group: GroupId,
        /// The delivery.
        rec: DeliveredRec,
    },
    /// A view was installed locally.
    ViewInstalled {
        /// Group concerned.
        group: GroupId,
        /// The installed view.
        view: View,
    },
    /// A directory record was applied (directory members only).
    DirRecord {
        /// The applied record.
        record: GroupRecord,
    },
}

impl CdrEncode for LogRecord {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            LogRecord::Created {
                group,
                config,
                members,
            } => {
                enc.write_u8(0);
                group.encode(enc);
                config.encode(enc);
                members.encode(enc);
            }
            LogRecord::Delivered { group, rec } => {
                enc.write_u8(1);
                group.encode(enc);
                rec.encode(enc);
            }
            LogRecord::ViewInstalled { group, view } => {
                enc.write_u8(2);
                group.encode(enc);
                view.encode(enc);
            }
            LogRecord::DirRecord { record } => {
                enc.write_u8(3);
                record.encode(enc);
            }
        }
    }
}

impl CdrDecode for LogRecord {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        match dec.read_u8()? {
            0 => Ok(LogRecord::Created {
                group: GroupId::decode(dec)?,
                config: GroupConfig::decode(dec)?,
                members: Vec::<NodeId>::decode(dec)?,
            }),
            1 => Ok(LogRecord::Delivered {
                group: GroupId::decode(dec)?,
                rec: DeliveredRec::decode(dec)?,
            }),
            2 => Ok(LogRecord::ViewInstalled {
                group: GroupId::decode(dec)?,
                view: View::decode(dec)?,
            }),
            3 => Ok(LogRecord::DirRecord {
                record: GroupRecord::decode(dec)?,
            }),
            other => Err(CdrError::BadDiscriminant(u32::from(other))),
        }
    }
}

/// Appends one CRC-framed record to `buf`.
pub fn append_frame<T: CdrEncode>(buf: &mut Vec<u8>, record: &T) {
    let payload = record.to_cdr();
    debug_assert!(payload.len() <= MAX_RECORD, "record exceeds frame cap");
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(&payload).to_be_bytes());
    buf.extend_from_slice(&payload);
}

/// Reads the frame starting at `buf[0]`, returning the decoded record
/// and the bytes consumed.
///
/// # Errors
///
/// Any [`LogError`]: truncation, an oversized length, a checksum
/// mismatch, or an undecodable payload.
pub fn read_frame<T: CdrDecode>(buf: &[u8]) -> Result<(T, usize), LogError> {
    if buf.len() < FRAME_HEADER {
        return Err(LogError::Truncated);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len as usize > MAX_RECORD {
        return Err(LogError::Oversized(len));
    }
    let expected = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let end = FRAME_HEADER + len as usize;
    if buf.len() < end {
        return Err(LogError::Truncated);
    }
    let payload = &buf[FRAME_HEADER..end];
    let actual = crc32(payload);
    if actual != expected {
        return Err(LogError::BadCrc { expected, actual });
    }
    let mut dec = CdrDecoder::new(payload);
    let record = T::decode(&mut dec)?;
    Ok((record, end))
}

/// Decodes every frame in `buf` in order.
///
/// # Errors
///
/// The first [`LogError`] hit; earlier records are discarded (a durable
/// log with a bad frame is treated as unreadable, not partially read —
/// the caller decides whether to fall back to the snapshot).
pub fn read_all<T: CdrDecode>(buf: &[u8]) -> Result<Vec<T>, LogError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < buf.len() {
        let (record, used) = read_frame::<T>(&buf[at..])?;
        out.push(record);
        at += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_gcs::view::ViewId;

    fn sample_records() -> Vec<LogRecord> {
        let group = GroupId::new("ga");
        vec![
            LogRecord::Created {
                group: group.clone(),
                config: GroupConfig::peer(),
                members: vec![NodeId::from_index(0), NodeId::from_index(1)],
            },
            LogRecord::Delivered {
                group: group.clone(),
                rec: DeliveredRec {
                    sender: NodeId::from_index(1),
                    order: DeliveryOrder::Total,
                    lamport: 42,
                    payload: Bytes::from_static(b"payload"),
                },
            },
            LogRecord::ViewInstalled {
                group: group.clone(),
                view: View::new(
                    group,
                    ViewId(2),
                    vec![NodeId::from_index(0), NodeId::from_index(1)],
                ),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let records = sample_records();
        for r in &records {
            append_frame(&mut buf, r);
        }
        assert_eq!(read_all::<LogRecord>(&buf).unwrap(), records);
    }

    #[test]
    fn every_strict_prefix_errors() {
        let mut buf = Vec::new();
        append_frame(&mut buf, &sample_records()[1]);
        for cut in 0..buf.len() {
            assert!(
                read_frame::<LogRecord>(&buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, &sample_records()[1]);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                read_frame::<LogRecord>(&bad).is_err(),
                "flipped byte {i} decoded"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF];
        buf.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame::<LogRecord>(&buf),
            Err(LogError::Oversized(_))
        ));
    }

    #[test]
    fn bad_discriminant_is_rejected() {
        let payload = vec![9u8];
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&crc32(&payload).to_be_bytes());
        buf.extend_from_slice(&payload);
        assert!(matches!(
            read_frame::<LogRecord>(&buf),
            Err(LogError::Cdr(CdrError::BadDiscriminant(9)))
        ));
    }
}
