//! CDR-style marshalling.
//!
//! CORBA's Common Data Representation aligns each primitive on its natural
//! boundary and length-prefixes strings and sequences. We reproduce that
//! format (big-endian, which CDR calls the sender's byte order — we fix it
//! for simplicity) because marshalling cost is part of the substrate the
//! paper measures.
//!
//! ```
//! use newtop_orb::cdr::{CdrEncoder, CdrDecoder};
//!
//! let mut enc = CdrEncoder::new();
//! enc.write_u8(7);
//! enc.write_u32(1234);          // aligned to a 4-byte boundary
//! enc.write_string("newtop");
//! let bytes = enc.finish();
//!
//! let mut dec = CdrDecoder::new(&bytes);
//! assert_eq!(dec.read_u8()?, 7);
//! assert_eq!(dec.read_u32()?, 1234);
//! assert_eq!(dec.read_string()?, "newtop");
//! # Ok::<(), newtop_orb::cdr::CdrError>(())
//! ```

use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// Maximum length accepted for a counted field (string, sequence, blob).
/// Guards decoders against corrupt or hostile length prefixes.
const MAX_COUNTED: u32 = 256 * 1024 * 1024;

/// Errors raised while decoding a CDR buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdrError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u32),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// An enum discriminant had no corresponding variant.
    BadDiscriminant(u32),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of buffer: needed {needed}, had {remaining}"
                )
            }
            CdrError::LengthOverflow(n) => write!(f, "length prefix too large: {n}"),
            CdrError::InvalidUtf8 => write!(f, "string field held invalid utf-8"),
            CdrError::BadDiscriminant(d) => write!(f, "unknown discriminant {d}"),
        }
    }
}

impl Error for CdrError {}

/// An append-only CDR encoder.
#[derive(Clone, Debug, Default)]
pub struct CdrEncoder {
    buf: Vec<u8>,
}

impl CdrEncoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        CdrEncoder::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        CdrEncoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder and returns the marshalled bytes.
    #[must_use]
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Discards everything written so far, retaining the allocation, so
    /// the encoder can be reused as a scratch buffer on a hot path.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Copies the marshalled bytes into a fresh refcounted frame and
    /// clears the encoder, retaining its capacity. This is the
    /// scratch-encoder companion to [`Self::finish`]: one copy per frame,
    /// no allocator round trip for the working buffer.
    #[must_use]
    pub fn take_frame(&mut self) -> Bytes {
        let frame = Bytes::copy_from_slice(&self.buf);
        self.buf.clear();
        frame
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn align(&mut self, n: usize) {
        // checked_rem: an alignment of zero is a no-op, not a panic.
        let rem = self.buf.len().checked_rem(n).unwrap_or(0);
        if rem != 0 {
            self.buf.resize(self.buf.len() + (n - rem), 0);
        }
    }

    /// Writes a `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as a single byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Writes a `u16`, aligned to 2 bytes.
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u32`, aligned to 4 bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u64`, aligned to 8 bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an `i32`, aligned to 4 bytes.
    pub fn write_i32(&mut self, v: i32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an `i64`, aligned to 8 bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an `f64`, aligned to 8 bytes.
    pub fn write_f64(&mut self, v: f64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a length-prefixed UTF-8 string (no NUL terminator; CDR's
    /// terminator carries no information here).
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds the counted-field bound.
    pub fn write_string(&mut self, v: &str) {
        assert!(v.len() <= MAX_COUNTED as usize, "string too long");
        self.write_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    ///
    /// # Panics
    ///
    /// Panics if the blob exceeds the counted-field bound.
    pub fn write_bytes(&mut self, v: &[u8]) {
        assert!(v.len() <= MAX_COUNTED as usize, "blob too long");
        self.write_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a sequence length prefix; follow with the elements.
    ///
    /// # Panics
    ///
    /// Panics if the length exceeds the counted-field bound.
    pub fn write_seq_len(&mut self, len: usize) {
        assert!(len <= MAX_COUNTED as usize, "sequence too long");
        self.write_u32(len as u32);
    }

    /// Encodes any [`CdrEncode`] value.
    pub fn write<T: CdrEncode + ?Sized>(&mut self, v: &T) {
        v.encode(self);
    }
}

/// A cursor-based CDR decoder.
#[derive(Clone, Debug)]
pub struct CdrDecoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> CdrDecoder<'a> {
    /// Creates a decoder over a buffer.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        CdrDecoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if the whole buffer has been consumed (ignoring alignment
    /// padding is the caller's concern).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn align(&mut self, n: usize) {
        // checked_rem: an alignment of zero is a no-op, not a panic.
        let rem = self.pos.checked_rem(n).unwrap_or(0);
        if rem != 0 {
            self.pos = (self.pos + n - rem).min(self.data.len());
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CdrError> {
        let end = self.pos.checked_add(n).ok_or(CdrError::UnexpectedEof {
            needed: n,
            remaining: self.remaining(),
        })?;
        let Some(s) = self.data.get(self.pos..end) else {
            return Err(CdrError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        };
        self.pos = end;
        Ok(s)
    }

    /// Like [`Self::take`], but yields a fixed-size array so the integer
    /// readers never need a fallible slice-to-array conversion.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CdrError> {
        let s = self.take(N)?;
        <[u8; N]>::try_from(s).map_err(|_| CdrError::UnexpectedEof {
            needed: N,
            remaining: 0,
        })
    }

    /// Reads a `u8`.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    /// Reads a `bool`.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        Ok(self.read_u8()? != 0)
    }

    /// Reads a `u16` (2-byte aligned).
    pub fn read_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2);
        Ok(u16::from_be_bytes(self.take_array::<2>()?))
    }

    /// Reads a `u32` (4-byte aligned).
    pub fn read_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4);
        Ok(u32::from_be_bytes(self.take_array::<4>()?))
    }

    /// Reads a `u64` (8-byte aligned).
    pub fn read_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8);
        Ok(u64::from_be_bytes(self.take_array::<8>()?))
    }

    /// Reads an `i32` (4-byte aligned).
    pub fn read_i32(&mut self) -> Result<i32, CdrError> {
        self.align(4);
        Ok(i32::from_be_bytes(self.take_array::<4>()?))
    }

    /// Reads an `i64` (8-byte aligned).
    pub fn read_i64(&mut self) -> Result<i64, CdrError> {
        self.align(8);
        Ok(i64::from_be_bytes(self.take_array::<8>()?))
    }

    /// Reads an `f64` (8-byte aligned).
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        self.align(8);
        Ok(f64::from_be_bytes(self.take_array::<8>()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        let len = self.read_counted_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CdrError::InvalidUtf8)
    }

    /// Reads a length-prefixed byte blob.
    pub fn read_bytes(&mut self) -> Result<Vec<u8>, CdrError> {
        let len = self.read_counted_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a sequence length prefix.
    pub fn read_seq_len(&mut self) -> Result<usize, CdrError> {
        self.read_counted_len()
    }

    fn read_counted_len(&mut self) -> Result<usize, CdrError> {
        let len = self.read_u32()?;
        if len > MAX_COUNTED {
            return Err(CdrError::LengthOverflow(len));
        }
        Ok(len as usize)
    }

    /// Decodes any [`CdrDecode`] value.
    pub fn read<T: CdrDecode>(&mut self) -> Result<T, CdrError> {
        T::decode(self)
    }
}

/// Values that can be marshalled in CDR form.
pub trait CdrEncode {
    /// Appends this value to the encoder.
    fn encode(&self, enc: &mut CdrEncoder);

    /// Convenience: marshals just this value into a fresh buffer.
    fn to_cdr(&self) -> Bytes {
        let mut enc = CdrEncoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Values that can be unmarshalled from CDR form.
pub trait CdrDecode: Sized {
    /// Reads one value from the decoder.
    ///
    /// # Errors
    ///
    /// Any [`CdrError`] from a malformed buffer.
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError>;

    /// Convenience: unmarshals a value occupying a whole buffer.
    ///
    /// # Errors
    ///
    /// Any [`CdrError`] from a malformed buffer.
    fn from_cdr(data: &[u8]) -> Result<Self, CdrError> {
        let mut dec = CdrDecoder::new(data);
        Self::decode(&mut dec)
    }
}

macro_rules! impl_cdr_primitive {
    ($ty:ty, $write:ident, $read:ident) => {
        impl CdrEncode for $ty {
            fn encode(&self, enc: &mut CdrEncoder) {
                enc.$write(*self);
            }
        }
        impl CdrDecode for $ty {
            fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
                dec.$read()
            }
        }
    };
}

impl_cdr_primitive!(u8, write_u8, read_u8);
impl_cdr_primitive!(bool, write_bool, read_bool);
impl_cdr_primitive!(u16, write_u16, read_u16);
impl_cdr_primitive!(u32, write_u32, read_u32);
impl_cdr_primitive!(u64, write_u64, read_u64);
impl_cdr_primitive!(i32, write_i32, read_i32);
impl_cdr_primitive!(i64, write_i64, read_i64);
impl_cdr_primitive!(f64, write_f64, read_f64);

impl CdrEncode for str {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_string(self);
    }
}

impl CdrEncode for String {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_string(self);
    }
}

impl CdrDecode for String {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        dec.read_string()
    }
}

impl<T: CdrEncode> CdrEncode for Vec<T> {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_seq_len(self.len());
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: CdrDecode> CdrDecode for Vec<T> {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let len = dec.read_seq_len()?;
        // Don't trust the prefix for preallocation beyond what the buffer
        // could possibly hold.
        let mut out = Vec::with_capacity(len.min(dec.remaining()));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: CdrEncode> CdrEncode for Option<T> {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            None => enc.write_bool(false),
            Some(v) => {
                enc.write_bool(true);
                v.encode(enc);
            }
        }
    }
}

impl<T: CdrDecode> CdrDecode for Option<T> {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        if dec.read_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: CdrEncode, B: CdrEncode> CdrEncode for (A, B) {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
}

impl<A: CdrDecode, B: CdrDecode> CdrDecode for (A, B) {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl CdrEncode for newtop_net::site::NodeId {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_u32(self.index());
    }
}

impl CdrDecode for newtop_net::site::NodeId {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(newtop_net::site::NodeId::from_index(dec.read_u32()?))
    }
}

/// Shared values marshal exactly like their pointee: refcounted buffers
/// (e.g. `Arc<DataMsg>` in the GCS delivery engine) go on the wire with
/// no representation change.
impl<T: CdrEncode> CdrEncode for std::sync::Arc<T> {
    fn encode(&self, enc: &mut CdrEncoder) {
        (**self).encode(enc);
    }
}

impl<T: CdrDecode> CdrDecode for std::sync::Arc<T> {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(std::sync::Arc::new(T::decode(dec)?))
    }
}

impl CdrEncode for Bytes {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_bytes(self);
    }
}

impl CdrDecode for Bytes {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(Bytes::from(dec.read_bytes()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = CdrEncoder::new();
        enc.write_u8(1);
        enc.write_u16(2);
        enc.write_u32(3);
        enc.write_u64(4);
        enc.write_i32(-5);
        enc.write_i64(-6);
        enc.write_f64(7.5);
        enc.write_bool(true);
        let b = enc.finish();
        let mut dec = CdrDecoder::new(&b);
        assert_eq!(dec.read_u8().unwrap(), 1);
        assert_eq!(dec.read_u16().unwrap(), 2);
        assert_eq!(dec.read_u32().unwrap(), 3);
        assert_eq!(dec.read_u64().unwrap(), 4);
        assert_eq!(dec.read_i32().unwrap(), -5);
        assert_eq!(dec.read_i64().unwrap(), -6);
        assert_eq!(dec.read_f64().unwrap(), 7.5);
        assert!(dec.read_bool().unwrap());
        assert!(dec.is_exhausted());
    }

    #[test]
    fn alignment_matches_cdr() {
        let mut enc = CdrEncoder::new();
        enc.write_u8(0xAA);
        enc.write_u32(0x0102_0304);
        let b = enc.finish();
        // 1 byte value, 3 bytes padding, 4 bytes u32.
        assert_eq!(b.len(), 8);
        assert_eq!(&b[4..], &[1, 2, 3, 4]);
    }

    #[test]
    fn align_zero_is_a_noop() {
        // Regression: `len % 0` / `pos % 0` used to panic; a zero
        // alignment must simply do nothing on both sides.
        let mut enc = CdrEncoder::new();
        enc.write_u8(0xAA);
        enc.align(0);
        assert_eq!(&enc.finish()[..], &[0xAA]);
        let data = [0xAA];
        let mut dec = CdrDecoder::new(&data);
        dec.align(0);
        assert_eq!(dec.read_u8().unwrap(), 0xAA);
    }

    #[test]
    fn strings_and_blobs() {
        let mut enc = CdrEncoder::new();
        enc.write_string("héllo");
        enc.write_bytes(&[9, 8, 7]);
        let b = enc.finish();
        let mut dec = CdrDecoder::new(&b);
        assert_eq!(dec.read_string().unwrap(), "héllo");
        assert_eq!(dec.read_bytes().unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn eof_is_reported() {
        let mut dec = CdrDecoder::new(&[0, 0]);
        let err = dec.read_u32().unwrap_err();
        assert!(matches!(err, CdrError::UnexpectedEof { .. }));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut enc = CdrEncoder::new();
        enc.write_u32(u32::MAX);
        let b = enc.finish();
        let mut dec = CdrDecoder::new(&b);
        assert_eq!(
            dec.read_string().unwrap_err(),
            CdrError::LengthOverflow(u32::MAX)
        );
    }

    #[test]
    fn truncated_string_is_eof_not_panic() {
        let mut enc = CdrEncoder::new();
        enc.write_u32(100); // promises 100 bytes, delivers none
        let b = enc.finish();
        let mut dec = CdrDecoder::new(&b);
        assert!(matches!(
            dec.read_string().unwrap_err(),
            CdrError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut enc = CdrEncoder::new();
        enc.write_bytes(&[0xFF, 0xFE]);
        let b = enc.finish();
        let mut dec = CdrDecoder::new(&b);
        assert_eq!(dec.read_string().unwrap_err(), CdrError::InvalidUtf8);
    }

    #[test]
    fn generic_containers_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let o: Option<String> = Some("x".to_owned());
        let n: Option<String> = None;
        let t: (u8, i64) = (9, -9);
        let mut enc = CdrEncoder::new();
        enc.write(&v);
        enc.write(&o);
        enc.write(&n);
        enc.write(&t);
        let b = enc.finish();
        let mut dec = CdrDecoder::new(&b);
        assert_eq!(dec.read::<Vec<u32>>().unwrap(), v);
        assert_eq!(dec.read::<Option<String>>().unwrap(), o);
        assert_eq!(dec.read::<Option<String>>().unwrap(), n);
        assert_eq!(dec.read::<(u8, i64)>().unwrap(), t);
    }

    #[test]
    fn take_frame_matches_finish_and_retains_capacity() {
        let mut scratch = CdrEncoder::with_capacity(256);
        for round in 0..3u32 {
            scratch.write_u32(round);
            scratch.write_string("reused");
            let mut fresh = CdrEncoder::new();
            fresh.write_u32(round);
            fresh.write_string("reused");
            assert_eq!(scratch.take_frame(), fresh.finish());
            assert!(scratch.is_empty(), "take_frame clears the buffer");
        }
    }

    #[test]
    fn arc_values_marshal_like_their_pointee() {
        let v = std::sync::Arc::new("shared".to_owned());
        assert_eq!(v.to_cdr(), "shared".to_owned().to_cdr());
        let back = std::sync::Arc::<String>::from_cdr(&v.to_cdr()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn to_cdr_from_cdr_round_trip() {
        let v = vec!["a".to_owned(), "bb".to_owned()];
        let b = v.to_cdr();
        assert_eq!(Vec::<String>::from_cdr(&b).unwrap(), v);
    }

    proptest! {
        #[test]
        fn prop_mixed_round_trip(
            a in any::<u8>(),
            b in any::<u64>(),
            c in any::<i32>(),
            s in ".{0,64}",
            v in proptest::collection::vec(any::<u32>(), 0..32),
            o in proptest::option::of(any::<u16>()),
        ) {
            let mut enc = CdrEncoder::new();
            enc.write_u8(a);
            enc.write_u64(b);
            enc.write_i32(c);
            enc.write_string(&s);
            enc.write(&v);
            enc.write(&o);
            let buf = enc.finish();
            let mut dec = CdrDecoder::new(&buf);
            prop_assert_eq!(dec.read_u8().unwrap(), a);
            prop_assert_eq!(dec.read_u64().unwrap(), b);
            prop_assert_eq!(dec.read_i32().unwrap(), c);
            prop_assert_eq!(dec.read_string().unwrap(), s);
            prop_assert_eq!(dec.read::<Vec<u32>>().unwrap(), v);
            prop_assert_eq!(dec.read::<Option<u16>>().unwrap(), o);
        }

        #[test]
        fn prop_f64_round_trip(x in any::<f64>()) {
            let mut enc = CdrEncoder::new();
            enc.write_f64(x);
            let buf = enc.finish();
            let mut dec = CdrDecoder::new(&buf);
            let y = dec.read_f64().unwrap();
            prop_assert!(x.to_bits() == y.to_bits());
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut dec = CdrDecoder::new(&data);
            // Whatever the bytes are, decoding returns Ok or Err, never panics.
            let _ = dec.read::<Vec<String>>();
            let mut dec2 = CdrDecoder::new(&data);
            let _ = dec2.read::<Option<(u64, String)>>();
        }
    }
}
