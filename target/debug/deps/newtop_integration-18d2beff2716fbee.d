/root/repo/target/debug/deps/newtop_integration-18d2beff2716fbee.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_integration-18d2beff2716fbee.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
