//! `cargo run -p newtop-analyze` — the workspace protocol-invariant
//! linter.
//!
//! Exit codes: 0 clean (or allowlisted), 1 surviving findings or failed
//! self-test, 2 usage/configuration error (bad allowlist, missing
//! workspace).

use newtop_analyze::{allow, analyze_workspace, selftest};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
newtop-analyze — NewTop protocol-invariant static analysis

USAGE:
    cargo run -p newtop-analyze [--] [OPTIONS]

OPTIONS:
    --self-test          inject known-bad snippets per rule and assert
                         each is caught (and each good twin is clean)
    --root <DIR>         workspace root (default: .)
    --allowlist <FILE>   allowlist path (default: <root>/analyze.allow)
    --show-allowed       also print the findings the allowlist suppressed
    -h, --help           this text
";

fn main() -> ExitCode {
    let mut self_test = false;
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut show_allowed = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--self-test" => self_test = true,
            "--show-allowed" => show_allowed = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist needs a value"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if self_test {
        return match selftest::run() {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprintln!("{report}");
                eprintln!("newtop-analyze: SELF-TEST FAILED — a rule regressed");
                ExitCode::FAILURE
            }
        };
    }

    let allow_path = allowlist.unwrap_or_else(|| root.join("analyze.allow"));
    let entries = if allow_path.exists() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("reading {}: {e}", allow_path.display())),
        };
        match allow::parse(&text) {
            Ok(e) => e,
            Err(e) => return usage_error(&e),
        }
    } else {
        Vec::new()
    };

    let findings = match analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => return usage_error(&format!("analyzing workspace: {e}")),
    };
    let total = findings.len();

    let (suppressed, surviving) = match allow::apply(findings, &entries) {
        Ok(split) => split,
        Err(stale) => return usage_error(&stale),
    };

    if show_allowed {
        for f in &suppressed {
            println!(
                "allowed  [{}] {}:{} in {}: {}",
                f.rule, f.file, f.line, f.func, f.message
            );
        }
    }
    for f in &surviving {
        println!(
            "VIOLATION [{}] {}:{} in {}: {}",
            f.rule, f.file, f.line, f.func, f.message
        );
    }
    println!(
        "newtop-analyze: {total} finding(s), {} allowlisted ({} entries), {} surviving",
        suppressed.len(),
        entries.len(),
        surviving.len()
    );
    if surviving.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("newtop-analyze: {msg}");
    ExitCode::from(2)
}
