//! Hosting the directory on simulated nodes.
//!
//! [`DirectoryApp`] is the [`NsoApp`] that turns a node into a directory
//! member: it answers [`DIR_OPERATION`] requests from a plain ORB
//! servant, replicates staged registrations through the directory's own
//! peer group with total order, and applies records in delivery order so
//! every member's table converges identically.
//!
//! [`register_service`] is the server-side half: one plain invocation
//! carrying a [`DirRequest::Register`] for the service's current view.

use std::time::Duration;

use bytes::Bytes;

use newtop::directory::{DirRequest, GroupRecord, DIR_OBJECT_KEY, DIR_OPERATION};
use newtop::nso::{GroupHandle, Nso, NsoOutput};
use newtop::simnode::NsoApp;
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecode, CdrEncode};
use newtop_orb::ior::ObjectRef;
use newtop_orb::orb::RequestId;
use newtop_orb::servant::ServantError;

use crate::directory::SharedDirectory;

/// The directory group's well-known name. The `#` prefix keeps it out of
/// the service namespace (service names become their group ids).
pub const DIR_GROUP: &str = "#dir";

/// Timer tag for the replication pump.
const PUMP_TAG: u64 = tags::APP_BASE + 7;

/// One directory member: plain-ORB front end, peer-group replication.
pub struct DirectoryApp {
    /// Every directory member (the bootstrap set clients are given).
    pub members: Vec<NodeId>,
    /// The directory group's configuration (total order required).
    pub config: GroupConfig,
    /// The record table, shared with the servant closure.
    pub state: SharedDirectory,
    /// How often staged registrations are flushed into the group.
    pub pump: Duration,
    peer: Option<GroupHandle>,
}

impl DirectoryApp {
    /// Creates a directory member over `members` with a 5 ms pump.
    #[must_use]
    pub fn new(members: Vec<NodeId>, state: SharedDirectory) -> Self {
        DirectoryApp {
            members,
            config: GroupConfig::peer(),
            state,
            pump: Duration::from_millis(5),
            peer: None,
        }
    }

    fn flush_staged(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let Some(peer) = self.peer.clone() else {
            return;
        };
        let staged = {
            // A panicking writer elsewhere poisons the mutex but leaves
            // the table itself consistent (every mutation is atomic at
            // the record level), so recover the data instead of
            // propagating the panic into the protocol path.
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.take_staged()
        };
        for record in staged {
            let _ = peer.send(nso, record.to_cdr(), DeliveryOrder::Total, now, out);
        }
    }
}

impl NsoApp for DirectoryApp {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let state = self.state.clone();
        nso.register_plain_servant(
            DIR_OBJECT_KEY,
            Box::new(move |op: &str, args: &[u8]| {
                if op != DIR_OPERATION {
                    return Err(ServantError::BadOperation(op.to_owned()));
                }
                state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .handle_raw(args)
                    .map_err(|_| ServantError::User(Bytes::from_static(b"malformed dir request")))
            }),
        );
        let peer = nso
            .create_peer_group(
                GroupId::new(DIR_GROUP),
                self.members.clone(),
                self.config.clone(),
                now,
                out,
            )
            .expect("directory group creation");
        self.peer = Some(peer);
        out.set_timer(self.pump, PUMP_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag == PUMP_TAG {
            self.flush_staged(nso, now, out);
            out.set_timer(self.pump, PUMP_TAG);
        }
    }

    fn on_output(&mut self, _nso: &mut Nso, output: NsoOutput, _now: SimTime, _out: &mut Outbox) {
        if let NsoOutput::PeerDeliver { group, payload, .. } = output {
            if group.as_str() != DIR_GROUP {
                return;
            }
            if let Ok(record) = GroupRecord::from_cdr(&payload) {
                self.state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .apply(record);
            }
        }
    }
}

/// Registers (or re-registers) a service with the directory: one plain
/// invocation carrying the record to `contact`, any directory member.
/// The reply surfaces as [`NsoOutput::PlainReply`]; callers that care
/// can match the returned [`RequestId`], but registration is idempotent
/// (stale views lose on apply) so fire-and-forget is the normal mode.
pub fn register_service(
    nso: &mut Nso,
    contact: NodeId,
    record: GroupRecord,
    out: &mut Outbox,
) -> RequestId {
    let body = DirRequest::Register { record }.to_cdr();
    nso.plain_invoke(
        &ObjectRef::new(contact, DIR_OBJECT_KEY),
        DIR_OPERATION,
        body,
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::shared_directory;
    use newtop_gcs::view::ViewId;

    #[test]
    fn poisoned_state_still_applies_records() {
        // Regression: the state mutex used to be locked with
        // `.expect("directory lock")`, so one panicking writer turned
        // every later delivery into a panic. Poison recovery keeps the
        // member applying records.
        let state = shared_directory();
        let poisoner = state.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the directory lock");
        })
        .join();
        assert!(state.lock().is_err(), "mutex should be poisoned");

        let mut app = DirectoryApp::new(vec![NodeId::from_index(0)], state.clone());
        let mut nso = Nso::new(NodeId::from_index(0));
        let mut out = Outbox::detached(0);
        let record = GroupRecord {
            name: "svc".to_owned(),
            config: GroupConfig::default(),
            members: vec![NodeId::from_index(1)],
            view: ViewId::default(),
        };
        app.on_output(
            &mut nso,
            NsoOutput::PeerDeliver {
                group: GroupId::new(DIR_GROUP),
                sender: NodeId::from_index(0),
                payload: record.to_cdr(),
            },
            SimTime::ZERO,
            &mut out,
        );
        let applied = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .records();
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].name, "svc");
    }
}
