/root/repo/target/release/deps/newtop_rt-5a6c69f426003009.d: crates/rt/src/lib.rs

/root/repo/target/release/deps/libnewtop_rt-5a6c69f426003009.rlib: crates/rt/src/lib.rs

/root/repo/target/release/deps/libnewtop_rt-5a6c69f426003009.rmeta: crates/rt/src/lib.rs

crates/rt/src/lib.rs:
