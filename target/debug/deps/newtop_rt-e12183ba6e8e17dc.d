/root/repo/target/debug/deps/newtop_rt-e12183ba6e8e17dc.d: crates/rt/src/lib.rs

/root/repo/target/debug/deps/newtop_rt-e12183ba6e8e17dc: crates/rt/src/lib.rs

crates/rt/src/lib.rs:
