/root/repo/target/debug/deps/newtop_orb-ed3f508b9fd75950.d: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_orb-ed3f508b9fd75950.rmeta: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs Cargo.toml

crates/orb/src/lib.rs:
crates/orb/src/cdr.rs:
crates/orb/src/giop.rs:
crates/orb/src/ior.rs:
crates/orb/src/naming.rs:
crates/orb/src/orb.rs:
crates/orb/src/servant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
