/root/repo/target/debug/deps/group_to_group-fb8d8bcb7bf0de34.d: examples/src/bin/group_to_group.rs

/root/repo/target/debug/deps/group_to_group-fb8d8bcb7bf0de34: examples/src/bin/group_to_group.rs

examples/src/bin/group_to_group.rs:
