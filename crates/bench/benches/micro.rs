//! Criterion micro-benchmarks of the substrate: CDR marshalling, the
//! group-communication wire codec, the delivery engine's ordering
//! pipelines, and the clock primitives.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use newtop_gcs::clock::{DepsVector, LamportClock};
use newtop_gcs::engine::EngineConfig;
use newtop_gcs::group::{DeliveryOrder, GroupId, OrderProtocol};
use newtop_gcs::messages::{DataMsg, GcsMessage};
use newtop_gcs::view::ViewId;
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder};
use newtop_orb::giop::GiopMessage;
use newtop_orb::ior::ObjectKey;

fn n(i: u32) -> NodeId {
    NodeId::from_index(i)
}

fn data_msg(sender: u32, seq: u64, ts: u64) -> DataMsg {
    DataMsg {
        group: GroupId::new("bench"),
        view: ViewId(1),
        sender: n(sender),
        seq,
        lamport: ts,
        order: DeliveryOrder::Total,
        deps: DepsVector::from_pairs([(n(0), seq.saturating_sub(1))]),
        acks: vec![(n(0), seq.saturating_sub(1)), (n(1), seq.saturating_sub(1))],
        payload: Bytes::from_static(&[0u8; 100]),
    }
}

fn bench_cdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdr");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_mixed", |b| {
        b.iter(|| {
            let mut enc = CdrEncoder::new();
            enc.write_u64(0xDEAD_BEEF);
            enc.write_string("operation-name");
            enc.write_bytes(&[7u8; 100]);
            enc.write_u32(42);
            enc.finish()
        });
    });
    let buf = {
        let mut enc = CdrEncoder::new();
        enc.write_u64(0xDEAD_BEEF);
        enc.write_string("operation-name");
        enc.write_bytes(&[7u8; 100]);
        enc.write_u32(42);
        enc.finish()
    };
    g.bench_function("decode_mixed", |b| {
        b.iter(|| {
            let mut dec = CdrDecoder::new(&buf);
            let a = dec.read_u64().unwrap();
            let s = dec.read_string().unwrap();
            let v = dec.read_bytes().unwrap();
            let x = dec.read_u32().unwrap();
            (a, s, v, x)
        });
    });
    g.finish();
}

fn bench_giop(c: &mut Criterion) {
    let mut g = c.benchmark_group("giop");
    let msg = GiopMessage::Request {
        request_id: 7,
        object_key: ObjectKey::new("newtop-nso"),
        operation: "gcs".to_owned(),
        response_expected: false,
        body: Bytes::from_static(&[1u8; 128]),
    };
    g.bench_function("frame_request", |b| b.iter(|| msg.to_frame()));
    let frame = msg.to_frame();
    g.bench_function("parse_request", |b| {
        b.iter(|| GiopMessage::from_frame(&frame).unwrap())
    });
    let wire = GcsMessage::Data(data_msg(1, 9, 100).into());
    g.bench_function("gcs_data_encode", |b| b.iter(|| wire.to_cdr()));
    let body = wire.to_cdr();
    g.bench_function("gcs_data_decode", |b| {
        b.iter(|| GcsMessage::from_cdr(&body).unwrap())
    });
    g.finish();
}

fn bench_engine_symmetric(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_symmetric");
    g.throughput(Throughput::Elements(100));
    g.bench_function("ingest_and_drain_100", |b| {
        b.iter_batched(
            || {
                EngineConfig {
                    me: n(0),
                    view: ViewId(1),
                    members: vec![n(0), n(1), n(2)],
                    protocol: OrderProtocol::Symmetric,
                }
                .build()
                .unwrap()
            },
            |mut e| {
                for i in 1..=100u64 {
                    let _ = e.ingest_data(data_msg(1, i, i * 2));
                    e.note_null(n(2), i * 2 + 1, 0);
                    let _ = e.drain_deliverable();
                }
                e
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_engine_asymmetric(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_asymmetric");
    g.throughput(Throughput::Elements(100));
    g.bench_function("sequencer_order_100", |b| {
        b.iter_batched(
            || {
                EngineConfig {
                    me: n(0),
                    view: ViewId(1),
                    members: vec![n(0), n(1), n(2)],
                    protocol: OrderProtocol::Asymmetric,
                }
                .build()
                .unwrap()
            },
            |mut e| {
                for i in 1..=100u64 {
                    let _ = e.ingest_data(data_msg(1, i, i * 2));
                    let _ = e.sequencer_poll();
                    let _ = e.drain_deliverable();
                }
                e
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("follower_deliver_100", |b| {
        b.iter_batched(
            || {
                let mut e = EngineConfig {
                    me: n(1),
                    view: ViewId(1),
                    members: vec![n(0), n(1), n(2)],
                    protocol: OrderProtocol::Asymmetric,
                }
                .build()
                .unwrap();
                for i in 1..=100u64 {
                    let _ = e.ingest_data(data_msg(2, i, i * 2));
                }
                e
            },
            |mut e| {
                let entries: Vec<(NodeId, u64)> = (1..=100).map(|i| (n(2), i)).collect();
                e.ingest_order(1, &entries);
                e.drain_deliverable()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_clocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("clocks");
    g.bench_function("lamport_tick_observe", |b| {
        let mut clock = LamportClock::new();
        b.iter(|| {
            clock.observe(clock.value() + 3);
            clock.tick()
        });
    });
    g.bench_function("deps_merge_and_check", |b| {
        let a = DepsVector::from_pairs((0..8).map(|i| (n(i), u64::from(i) + 1)));
        let other = DepsVector::from_pairs((4..12).map(|i| (n(i), u64::from(i) * 2)));
        b.iter(|| {
            let mut m = a.clone();
            m.merge(&other);
            m.satisfied_by(|q| u64::from(q.index()) * 3)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cdr,
    bench_giop,
    bench_engine_symmetric,
    bench_engine_asymmetric,
    bench_clocks
);
criterion_main!(benches);
