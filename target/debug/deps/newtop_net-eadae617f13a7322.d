/root/repo/target/debug/deps/newtop_net-eadae617f13a7322.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libnewtop_net-eadae617f13a7322.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libnewtop_net-eadae617f13a7322.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/latency.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/site.rs:
crates/net/src/stats.rs:
crates/net/src/tcp.rs:
crates/net/src/time.rs:
crates/net/src/trace.rs:
crates/net/src/transport.rs:
