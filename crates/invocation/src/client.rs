//! The client side of request-reply invocation.
//!
//! A [`ClientCore`] owns a client's bindings to server groups and its
//! in-flight calls. It is a pure state machine: the owning NSO feeds it
//! delivered group messages and direct replies, and executes the
//! [`InvCommand`]s it emits.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use bytes::Bytes;

use newtop_gcs::group::GroupId;
use newtop_net::site::NodeId;
use newtop_orb::cdr::CdrDecode;

use crate::api::{BindingStyle, CallId, InvCommand, InvMessage, ReplyMode};

/// Errors from the client API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// No binding is registered under that client/server group.
    UnknownBinding(GroupId),
    /// The call number is not pending (already complete or never made).
    UnknownCall(u64),
    /// The pending-call table is full: admission control shed the call
    /// before anything was sent. Retry after in-flight calls complete.
    Overloaded(GroupId),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::UnknownBinding(g) => write!(f, "no binding for group {g}"),
            ClientError::UnknownCall(n) => write!(f, "no pending call #{n}"),
            ClientError::Overloaded(g) => {
                write!(f, "pending-call table full; call to {g} shed")
            }
        }
    }
}

impl Error for ClientError {}

/// Events the client core reports to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// An invocation gathered the replies its mode required.
    Complete {
        /// The completed call.
        call: CallId,
        /// `(server, result)` pairs (empty for one-way sends).
        replies: Vec<(NodeId, Bytes)>,
    },
    /// An open binding broke: its request manager left the client/server
    /// group view (crash or disconnection, §4.1). The smart proxy should
    /// rebind and retry the listed calls.
    BindingBroken {
        /// The broken client/server group.
        group: GroupId,
        /// The manager that disappeared.
        manager: NodeId,
        /// Call numbers still pending on this binding.
        pending_calls: Vec<u64>,
    },
}

#[derive(Clone, Debug)]
struct BindingState {
    style: BindingStyle,
    /// Number of servers behind this binding (for majority/all counts in
    /// the closed style).
    server_count: usize,
}

#[derive(Clone, Debug)]
struct CallState {
    group: GroupId,
    op: String,
    args: Bytes,
    mode: ReplyMode,
    replies: Vec<(NodeId, Bytes)>,
    needed: usize,
}

/// Client-side invocation state machine. See the [module docs](self).
#[derive(Debug)]
pub struct ClientCore {
    node: NodeId,
    next_call: u64,
    bindings: BTreeMap<GroupId, BindingState>,
    calls: BTreeMap<u64, CallState>,
    /// Admission bound on `calls`; new invocations beyond it are shed.
    max_pending: usize,
    /// Invocations shed by the admission bound since creation.
    shed: u64,
}

impl ClientCore {
    /// Creates the client core for `node` with the default pending-call
    /// bound from [`newtop_flow::FlowConfig`].
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        ClientCore {
            node,
            next_call: 1,
            bindings: BTreeMap::new(),
            calls: BTreeMap::new(),
            max_pending: newtop_flow::FlowConfig::default().max_pending_calls,
            shed: 0,
        }
    }

    /// Sets the most calls that may await replies at once (clamped to at
    /// least 1); further invocations shed with [`ClientError::Overloaded`].
    #[must_use]
    pub fn with_max_pending_calls(mut self, max: usize) -> Self {
        self.max_pending = max.max(1);
        self
    }

    /// Invocations shed by the pending-call bound since creation.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// The owning node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a binding: the client/server group `group` attaches this
    /// client to a service of `server_count` replicas in the given style.
    pub fn register_binding(&mut self, group: GroupId, style: BindingStyle, server_count: usize) {
        self.bindings.insert(
            group,
            BindingState {
                style,
                server_count,
            },
        );
    }

    /// Removes a binding (the group was disbanded). Pending calls remain
    /// and can be re-issued against a new binding with
    /// [`Self::retry`].
    pub fn remove_binding(&mut self, group: &GroupId) {
        self.bindings.remove(group);
    }

    /// Whether a binding exists for `group`.
    #[must_use]
    pub fn has_binding(&self, group: &GroupId) -> bool {
        self.bindings.contains_key(group)
    }

    /// The binding style of `group`, if bound.
    #[must_use]
    pub fn binding_style(&self, group: &GroupId) -> Option<&BindingStyle> {
        self.bindings.get(group).map(|b| &b.style)
    }

    /// Call numbers still awaiting replies.
    #[must_use]
    pub fn pending_calls(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.calls.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Issues an invocation over a binding. Returns the call id and the
    /// commands to execute. One-way sends complete immediately (the
    /// returned event list contains the completion).
    ///
    /// # Errors
    ///
    /// [`ClientError::UnknownBinding`] if `group` is not bound;
    /// [`ClientError::Overloaded`] if the pending-call table is full (the
    /// call is shed before anything is sent; one-way sends, which never
    /// enter the table, are exempt).
    pub fn invoke(
        &mut self,
        group: &GroupId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
    ) -> Result<(CallId, Vec<InvCommand>, Vec<ClientEvent>), ClientError> {
        let binding = self
            .bindings
            .get(group)
            .ok_or_else(|| ClientError::UnknownBinding(group.clone()))?;
        if mode != ReplyMode::OneWay && self.calls.len() >= self.max_pending {
            self.shed += 1;
            return Err(ClientError::Overloaded(group.clone()));
        }
        let call = CallId {
            client: self.node,
            number: self.next_call,
        };
        self.next_call += 1;
        let msg = InvMessage::Request {
            call,
            op: op.to_owned(),
            args: args.clone(),
            mode,
        };
        let commands = vec![InvCommand::multicast(group.clone(), &msg)];
        let mut events = Vec::new();
        if mode == ReplyMode::OneWay {
            events.push(ClientEvent::Complete {
                call,
                replies: Vec::new(),
            });
        } else {
            let needed = match binding.style {
                // The manager collects; the client waits for its single
                // relayed answer.
                BindingStyle::Open { .. } => 1,
                BindingStyle::Closed => mode.needed(binding.server_count),
            };
            self.calls.insert(
                call.number,
                CallState {
                    group: group.clone(),
                    op: op.to_owned(),
                    args,
                    mode,
                    replies: Vec::new(),
                    needed: needed.max(1),
                },
            );
        }
        Ok((call, commands, events))
    }

    /// Re-issues a pending call over `group` (typically a fresh binding
    /// after a rebind), keeping the same call number so servers can
    /// deduplicate (§4.1).
    ///
    /// # Errors
    ///
    /// [`ClientError::UnknownCall`] if the call is not pending;
    /// [`ClientError::UnknownBinding`] if `group` is not bound.
    pub fn retry(
        &mut self,
        call_number: u64,
        group: &GroupId,
    ) -> Result<Vec<InvCommand>, ClientError> {
        if !self.bindings.contains_key(group) {
            return Err(ClientError::UnknownBinding(group.clone()));
        }
        let node = self.node;
        let state = self
            .calls
            .get_mut(&call_number)
            .ok_or(ClientError::UnknownCall(call_number))?;
        state.group = group.clone();
        state.replies.clear();
        let msg = InvMessage::Request {
            call: CallId {
                client: node,
                number: call_number,
            },
            op: state.op.clone(),
            args: state.args.clone(),
            mode: state.mode,
        };
        Ok(vec![InvCommand::multicast(group.clone(), &msg)])
    }

    /// Feeds a message delivered in one of the client's groups (or
    /// received directly). Unknown or irrelevant payloads are ignored.
    pub fn on_message(&mut self, payload: &[u8]) -> Vec<ClientEvent> {
        let Ok(msg) = InvMessage::from_cdr(payload) else {
            return Vec::new();
        };
        self.on_decoded(msg)
    }

    /// Like [`ClientCore::on_message`] for an already-unmarshalled
    /// message. Hosts that decode at their ingest boundary (to count
    /// malformed input) use this to avoid unmarshalling twice.
    pub fn on_decoded(&mut self, msg: InvMessage) -> Vec<ClientEvent> {
        match msg {
            InvMessage::RelayedReply { call, replies } => self.complete_with(call, replies),
            InvMessage::DirectReply {
                call,
                replier,
                result,
            } => self.accumulate_direct(call, replier, result),
            _ => Vec::new(),
        }
    }

    fn complete_with(&mut self, call: CallId, replies: Vec<(NodeId, Bytes)>) -> Vec<ClientEvent> {
        if call.client != self.node {
            return Vec::new();
        }
        if self.calls.remove(&call.number).is_none() {
            return Vec::new(); // duplicate or stale
        }
        vec![ClientEvent::Complete { call, replies }]
    }

    fn accumulate_direct(
        &mut self,
        call: CallId,
        replier: NodeId,
        result: Bytes,
    ) -> Vec<ClientEvent> {
        if call.client != self.node {
            return Vec::new();
        }
        let Some(state) = self.calls.get_mut(&call.number) else {
            return Vec::new();
        };
        if state.replies.iter().any(|(n, _)| *n == replier) {
            return Vec::new(); // duplicate from a retry
        }
        state.replies.push((replier, result));
        if state.replies.len() >= state.needed {
            if let Some(state) = self.calls.remove(&call.number) {
                return vec![ClientEvent::Complete {
                    call,
                    replies: state.replies,
                }];
            }
            return Vec::new();
        }
        Vec::new()
    }

    /// Notifies the core that the membership behind a binding changed.
    ///
    /// * Open binding, manager gone → [`ClientEvent::BindingBroken`]; the
    ///   binding is removed and its pending calls reported for retry.
    /// * Closed binding → the server count is updated and quorum needs
    ///   are re-evaluated (server failures are masked automatically —
    ///   the closed-group advantage of §2.1).
    pub fn on_binding_view_change(
        &mut self,
        group: &GroupId,
        surviving_members: &[NodeId],
    ) -> Vec<ClientEvent> {
        let Some(binding) = self.bindings.get_mut(group) else {
            return Vec::new();
        };
        match binding.style.clone() {
            BindingStyle::Open { manager } => {
                if surviving_members.contains(&manager) {
                    return Vec::new();
                }
                self.bindings.remove(group);
                let pending: Vec<u64> = {
                    let mut v: Vec<u64> = self
                        .calls
                        .iter()
                        .filter(|(_, c)| &c.group == group)
                        .map(|(&n, _)| n)
                        .collect();
                    v.sort_unstable();
                    v
                };
                vec![ClientEvent::BindingBroken {
                    group: group.clone(),
                    manager,
                    pending_calls: pending,
                }]
            }
            BindingStyle::Closed => {
                // Group members are the client plus the servers.
                let servers = surviving_members
                    .iter()
                    .filter(|&&m| m != self.node)
                    .count();
                binding.server_count = servers;
                // Re-evaluate quorums: a dead server will never reply.
                let mut events = Vec::new();
                let ready: Vec<u64> = self
                    .calls
                    .iter_mut()
                    .filter(|(_, c)| &c.group == group)
                    .filter_map(|(&n, c)| {
                        c.needed = c.mode.needed(servers).max(1);
                        (c.replies.len() >= c.needed).then_some(n)
                    })
                    .collect();
                for n in ready {
                    let Some(state) = self.calls.remove(&n) else {
                        continue;
                    };
                    events.push(ClientEvent::Complete {
                        call: CallId {
                            client: self.node,
                            number: n,
                        },
                        replies: state.replies,
                    });
                }
                events
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_orb::cdr::CdrEncode;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn gid() -> GroupId {
        GroupId::new("cs")
    }

    fn relayed(call: CallId, replies: Vec<(NodeId, Bytes)>) -> Vec<u8> {
        InvMessage::RelayedReply { call, replies }.to_cdr().to_vec()
    }

    fn direct(call: CallId, replier: NodeId, result: &[u8]) -> Vec<u8> {
        InvMessage::DirectReply {
            call,
            replier,
            result: Bytes::copy_from_slice(result),
        }
        .to_cdr()
        .to_vec()
    }

    fn open_client() -> ClientCore {
        let mut c = ClientCore::new(n(0));
        c.register_binding(gid(), BindingStyle::Open { manager: n(1) }, 3);
        c
    }

    fn closed_client() -> ClientCore {
        let mut c = ClientCore::new(n(0));
        c.register_binding(gid(), BindingStyle::Closed, 3);
        c
    }

    #[test]
    fn invoke_requires_binding() {
        let mut c = ClientCore::new(n(0));
        assert!(matches!(
            c.invoke(&gid(), "op", Bytes::new(), ReplyMode::All),
            Err(ClientError::UnknownBinding(_))
        ));
    }

    #[test]
    fn one_way_completes_immediately() {
        let mut c = open_client();
        let (call, cmds, events) = c
            .invoke(&gid(), "notify", Bytes::new(), ReplyMode::OneWay)
            .unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(
            events,
            vec![ClientEvent::Complete {
                call,
                replies: vec![]
            }]
        );
        assert!(c.pending_calls().is_empty());
    }

    #[test]
    fn open_binding_completes_on_relayed_reply() {
        let mut c = open_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::All)
            .unwrap();
        assert_eq!(c.pending_calls(), vec![call.number]);
        let replies = vec![
            (n(1), Bytes::from_static(b"a")),
            (n(2), Bytes::from_static(b"b")),
        ];
        let events = c.on_message(&relayed(call, replies.clone()));
        assert_eq!(events, vec![ClientEvent::Complete { call, replies }]);
        assert!(c.pending_calls().is_empty());
        // A duplicate relayed reply (retry race) is ignored.
        assert!(c.on_message(&relayed(call, vec![])).is_empty());
    }

    #[test]
    fn closed_binding_counts_direct_replies() {
        let mut c = closed_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::Majority)
            .unwrap();
        assert!(c.on_message(&direct(call, n(1), b"r1")).is_empty());
        // Duplicate replier ignored.
        assert!(c.on_message(&direct(call, n(1), b"r1")).is_empty());
        let events = c.on_message(&direct(call, n(2), b"r2"));
        assert_eq!(events.len(), 1, "majority of 3 is 2");
        // Late third reply is stale.
        assert!(c.on_message(&direct(call, n(3), b"r3")).is_empty());
    }

    #[test]
    fn repeated_view_changes_complete_each_call_once() {
        // Regression: a shrinking view used to complete ready calls with
        // `remove().expect("present")`; a repeat of the same view change
        // must be a clean no-op, not a panic.
        let mut c = closed_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::All)
            .unwrap();
        assert!(c.on_message(&direct(call, n(1), b"r1")).is_empty());
        // Two of three servers die: the one reply already in hand now
        // satisfies the quorum.
        let events = c.on_binding_view_change(&gid(), &[n(0), n(1)]);
        assert_eq!(events.len(), 1);
        assert!(c.pending_calls().is_empty());
        // The identical notification again completes nothing further.
        assert!(c.on_binding_view_change(&gid(), &[n(0), n(1)]).is_empty());
    }

    #[test]
    fn wait_for_first_needs_one() {
        let mut c = closed_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::First)
            .unwrap();
        let events = c.on_message(&direct(call, n(2), b"r"));
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn replies_for_other_clients_are_ignored() {
        let mut c = closed_client();
        let (_call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::First)
            .unwrap();
        let foreign = CallId {
            client: n(9),
            number: 1,
        };
        assert!(c.on_message(&direct(foreign, n(2), b"r")).is_empty());
        assert_eq!(c.pending_calls().len(), 1);
    }

    #[test]
    fn open_manager_crash_breaks_binding_and_lists_calls() {
        let mut c = open_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::All)
            .unwrap();
        // The view now contains only the client: the manager is gone.
        let events = c.on_binding_view_change(&gid(), &[n(0)]);
        assert_eq!(
            events,
            vec![ClientEvent::BindingBroken {
                group: gid(),
                manager: n(1),
                pending_calls: vec![call.number],
            }]
        );
        assert!(!c.has_binding(&gid()));
    }

    #[test]
    fn retry_reissues_with_same_call_number() {
        let mut c = open_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::from_static(b"args"), ReplyMode::First)
            .unwrap();
        c.on_binding_view_change(&gid(), &[n(0)]);
        // Rebind to a new manager over a new group.
        let g2 = GroupId::new("cs2");
        c.register_binding(g2.clone(), BindingStyle::Open { manager: n(2) }, 3);
        let cmds = c.retry(call.number, &g2).unwrap();
        let InvCommand::Multicast { group, payload } = &cmds[0] else {
            panic!("expected multicast");
        };
        assert_eq!(group, &g2);
        let InvMessage::Request { call: c2, op, .. } = InvMessage::from_cdr(payload).unwrap()
        else {
            panic!("expected request");
        };
        assert_eq!(c2, call, "same call number after rebind");
        assert_eq!(op, "op");
    }

    #[test]
    fn retry_unknown_call_fails() {
        let mut c = open_client();
        assert!(matches!(
            c.retry(42, &gid()),
            Err(ClientError::UnknownCall(42))
        ));
    }

    #[test]
    fn closed_binding_masks_server_failure() {
        let mut c = closed_client();
        let (call, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::All)
            .unwrap();
        // Two of three replied...
        c.on_message(&direct(call, n(1), b"r1"));
        c.on_message(&direct(call, n(2), b"r2"));
        assert_eq!(c.pending_calls(), vec![call.number]);
        // ...then the third crashed out of the view: the quorum shrinks
        // and the call completes without rebinding.
        let events = c.on_binding_view_change(&gid(), &[n(0), n(1), n(2)]);
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], ClientEvent::Complete { .. }));
    }

    #[test]
    fn pending_call_bound_sheds_and_recovers() {
        let mut c = closed_client().with_max_pending_calls(2);
        let (c1, _, _) = c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::First)
            .unwrap();
        c.invoke(&gid(), "op", Bytes::new(), ReplyMode::First)
            .unwrap();
        assert_eq!(
            c.invoke(&gid(), "op", Bytes::new(), ReplyMode::First),
            Err(ClientError::Overloaded(gid()))
        );
        assert_eq!(c.shed_count(), 1);
        // One-way sends never enter the table, so they are exempt.
        assert!(c
            .invoke(&gid(), "notify", Bytes::new(), ReplyMode::OneWay)
            .is_ok());
        // Completing a call frees a slot.
        c.on_message(&direct(c1, n(1), b"r"));
        assert!(c
            .invoke(&gid(), "op", Bytes::new(), ReplyMode::First)
            .is_ok());
    }

    #[test]
    fn garbage_payloads_are_ignored() {
        let mut c = open_client();
        assert!(c.on_message(b"not cdr").is_empty());
    }
}
