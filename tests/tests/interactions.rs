//! End-to-end tests of the paper's three interaction modes through the
//! full NSO stack: group-to-group request-reply (Fig. 6), peer
//! participation, and mixed/overlapping deployments.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gy() -> GroupId {
    GroupId::new("gy-servers")
}

fn gx() -> GroupId {
    GroupId::new("gx-clients")
}

fn gz() -> GroupId {
    GroupId::new("gz-monitor")
}

/// A member of the server group gy; the designated manager also serves
/// the monitor group.
struct GyServer {
    gy_members: Vec<NodeId>,
    gz_members: Vec<NodeId>,
    manager: NodeId,
}

impl NsoApp for GyServer {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gy(),
            self.gy_members.clone(),
            Replication::Active,
            OpenOptimisation::None,
            GroupConfig::request_reply(),
            now,
            out,
        )
        .expect("gy");
        let me = nso.node().index();
        nso.register_group_servant(
            gy(),
            Box::new(move |op: &str, args: &[u8]| {
                Bytes::from(format!("{op}@{me}:{}", args.first().copied().unwrap_or(0)))
            }),
        );
        if nso.node() == self.manager {
            nso.setup_monitor_group(
                gz(),
                gx(),
                self.manager,
                gy(),
                self.gz_members.clone(),
                GroupConfig::request_reply(),
                now,
                out,
            )
            .expect("gz at manager");
        }
    }

    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

/// A member of the client group gx: joins gx (peer group) and the monitor
/// group, and issues group-to-group calls driven by totally-ordered
/// triggers in gx so all members' call counters agree.
struct GxMember {
    gx_members: Vec<NodeId>,
    gz_members: Vec<NodeId>,
    manager: NodeId,
    trigger: bool,
    calls_to_make: usize,
    completions: Vec<(u64, Vec<(NodeId, Bytes)>)>,
}

impl NsoApp for GxMember {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_peer_group(
            gx(),
            self.gx_members.clone(),
            GroupConfig::peer().with_time_silence(Duration::from_millis(20)),
            now,
            out,
        )
        .expect("gx");
        nso.setup_monitor_group(
            gz(),
            gx(),
            self.manager,
            gy(),
            self.gz_members.clone(),
            GroupConfig::request_reply(),
            now,
            out,
        )
        .expect("gz at gx member");
        if self.trigger {
            out.set_timer(Duration::from_millis(20), tags::APP_BASE);
        }
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        // The trigger member multicasts in gx; every member (itself
        // included) reacts to the totally-ordered delivery by issuing the
        // group call, keeping the per-group call counters aligned (§4.3).
        if let Some(peer) = nso.handle_for(&gx()) {
            let _ = peer.send(
                nso,
                Bytes::from_static(b"go"),
                DeliveryOrder::Total,
                now,
                out,
            );
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::PeerDeliver { group, .. } if group == gx() => {
                let _ = nso.g2g_invoke(
                    &gz(),
                    "tally",
                    Bytes::from(vec![1]),
                    ReplyMode::All,
                    now,
                    out,
                );
            }
            NsoOutput::G2gComplete {
                origin,
                number,
                replies,
            } => {
                assert_eq!(origin, gx());
                self.completions.push((number, replies));
                if self.trigger && self.completions.len() < self.calls_to_make {
                    out.set_timer(Duration::from_millis(5), tags::APP_BASE);
                }
            }
            _ => {}
        }
    }
}

#[test]
fn group_to_group_invocation_fans_replies_to_every_client_member() {
    let mut sim = Sim::new(SimConfig::lan(51));
    // Nodes 0..2: gy servers; nodes 3..4: gx members.
    let gy_members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let gx_members: Vec<NodeId> = (3..5).map(NodeId::from_index).collect();
    let manager = gy_members[0];
    let mut gz_members = gx_members.clone();
    gz_members.push(manager);

    for &s in &gy_members {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(GyServer {
                    gy_members: gy_members.clone(),
                    gz_members: gz_members.clone(),
                    manager,
                }),
            )),
        );
    }
    for (i, &m) in gx_members.iter().enumerate() {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                m,
                Box::new(GxMember {
                    gx_members: gx_members.clone(),
                    gz_members: gz_members.clone(),
                    manager,
                    trigger: i == 0,
                    calls_to_make: 5,
                    completions: Vec::new(),
                }),
            )),
        );
    }
    sim.run_until(SimTime::from_secs(10));

    // Every gx member received the same replies for the same call
    // numbers, atomically through the monitor group.
    type MemberResults = Vec<(u64, Vec<(NodeId, Bytes)>)>;
    let states: Vec<MemberResults> = gx_members
        .iter()
        .map(|&m| {
            sim.node_ref::<NsoNode>(m)
                .unwrap()
                .app_ref::<GxMember>()
                .unwrap()
                .completions
                .clone()
        })
        .collect();
    assert!(
        states[0].len() >= 5,
        "trigger member completed {} group calls",
        states[0].len()
    );
    assert_eq!(
        states[0], states[1],
        "both gx members saw identical results"
    );
    for (_, replies) in &states[0] {
        assert_eq!(replies.len(), 3, "wait-for-all gathered every gy member");
    }
}

/// Peer participation through the public API: members multicast, all
/// deliver the identical totally-ordered sequence.
struct Peer {
    members: Vec<NodeId>,
    to_send: usize,
    sent: usize,
    delivered: Vec<(NodeId, Bytes)>,
}

impl NsoApp for Peer {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_peer_group(
            GroupId::new("conf"),
            self.members.clone(),
            GroupConfig::peer().with_time_silence(Duration::from_millis(15)),
            now,
            out,
        )
        .expect("peer group");
        out.set_timer(Duration::from_millis(3), tags::APP_BASE);
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        if self.sent < self.to_send {
            let body = format!("{}:{}", nso.node(), self.sent);
            if let Some(peer) = nso.handle_for(&GroupId::new("conf")) {
                let _ = peer.send(nso, Bytes::from(body), DeliveryOrder::Total, now, out);
            }
            self.sent += 1;
            out.set_timer(Duration::from_millis(7), tags::APP_BASE);
        }
    }

    fn on_output(&mut self, _nso: &mut Nso, output: NsoOutput, _now: SimTime, _out: &mut Outbox) {
        if let NsoOutput::PeerDeliver {
            sender, payload, ..
        } = output
        {
            self.delivered.push((sender, payload));
        }
    }
}

#[test]
fn peer_participation_agrees_on_total_order_over_wan() {
    let mut sim = Sim::new(SimConfig::internet(52));
    let members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let sites = [Site::Newcastle, Site::London, Site::Pisa];
    for (i, &m) in members.iter().enumerate() {
        sim.add_node(
            sites[i],
            Box::new(NsoNode::new(
                m,
                Box::new(Peer {
                    members: members.clone(),
                    to_send: 8,
                    sent: 0,
                    delivered: Vec::new(),
                }),
            )),
        );
    }
    sim.run_until(SimTime::from_secs(10));
    let sequences: Vec<Vec<(NodeId, Bytes)>> = members
        .iter()
        .map(|&m| {
            sim.node_ref::<NsoNode>(m)
                .unwrap()
                .app_ref::<Peer>()
                .unwrap()
                .delivered
                .clone()
        })
        .collect();
    assert_eq!(sequences[0].len(), 24, "all 3×8 multicasts delivered");
    assert_eq!(sequences[0], sequences[1]);
    assert_eq!(sequences[1], sequences[2]);
}

/// One node acting as a server in one group and a peer in another
/// (overlapping groups through the public API).
#[test]
fn a_node_can_serve_and_peer_simultaneously() {
    struct DualRole {
        servers: Vec<NodeId>,
        peers: Vec<NodeId>,
        peer_deliveries: u32,
    }
    impl NsoApp for DualRole {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            nso.create_server_group(
                GroupId::new("dual-svc"),
                self.servers.clone(),
                Replication::Active,
                OpenOptimisation::None,
                GroupConfig::request_reply(),
                now,
                out,
            )
            .expect("server group");
            nso.register_group_servant(
                GroupId::new("dual-svc"),
                Box::new(|_: &str, _: &[u8]| Bytes::from_static(b"ok")),
            );
            nso.create_peer_group(
                GroupId::new("dual-peer"),
                self.peers.clone(),
                GroupConfig::peer().with_time_silence(Duration::from_millis(15)),
                now,
                out,
            )
            .expect("peer group");
            if nso.node().index() == 0 {
                out.set_timer(Duration::from_millis(10), tags::APP_BASE);
            }
        }
        fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
            if let Some(peer) = nso.handle_for(&GroupId::new("dual-peer")) {
                let _ = peer.send(
                    nso,
                    Bytes::from_static(b"tick"),
                    DeliveryOrder::Total,
                    now,
                    out,
                );
            }
        }
        fn on_output(&mut self, _: &mut Nso, output: NsoOutput, _: SimTime, _: &mut Outbox) {
            if matches!(output, NsoOutput::PeerDeliver { .. }) {
                self.peer_deliveries += 1;
            }
        }
    }

    struct SimpleClient {
        servers: Vec<NodeId>,
        replies: Option<usize>,
    }
    impl NsoApp for SimpleClient {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            nso.bind(
                GroupId::new("dual-svc"),
                BindOptions::open(self.servers[1]),
                now,
                out,
            )
            .expect("bind");
        }
        fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
            match output {
                NsoOutput::BindingReady { group } => {
                    let binding = nso.handle_for(&group).unwrap();
                    binding
                        .invoke(nso, "op", Bytes::new(), ReplyMode::All, now, out)
                        .unwrap();
                }
                NsoOutput::InvocationComplete { replies, .. } => {
                    self.replies = Some(replies.len());
                }
                _ => {}
            }
        }
    }

    let mut sim = Sim::new(SimConfig::lan(53));
    let servers: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    let peers: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(DualRole {
                    servers: servers.clone(),
                    peers: peers.clone(),
                    peer_deliveries: 0,
                }),
            )),
        );
    }
    let client = NodeId::from_index(2);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(SimpleClient {
                servers: servers.clone(),
                replies: None,
            }),
        )),
    );
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(
        sim.node_ref::<NsoNode>(client)
            .unwrap()
            .app_ref::<SimpleClient>()
            .unwrap()
            .replies,
        Some(2)
    );
    for &s in &servers {
        let d = sim
            .node_ref::<NsoNode>(s)
            .unwrap()
            .app_ref::<DualRole>()
            .unwrap()
            .peer_deliveries;
        assert!(d >= 1, "peer traffic delivered at {s}");
    }
}
