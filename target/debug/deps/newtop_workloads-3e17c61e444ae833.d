/root/repo/target/debug/deps/newtop_workloads-3e17c61e444ae833.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

/root/repo/target/debug/deps/libnewtop_workloads-3e17c61e444ae833.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

/root/repo/target/debug/deps/libnewtop_workloads-3e17c61e444ae833.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/plain.rs:
crates/workloads/src/scenario.rs:
