//! Partition behaviour through the full stack: the network splits, each
//! side installs its own views (the paper's partitionable model), clients
//! rebind within their side, and traffic continues after healing.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gid() -> GroupId {
    GroupId::new("part-svc")
}

struct Server {
    members: Vec<NodeId>,
}

impl NsoApp for Server {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gid(),
            self.members.clone(),
            Replication::Active,
            OpenOptimisation::None,
            GroupConfig {
                time_silence: Duration::from_millis(20),
                ..GroupConfig::request_reply()
            },
            now,
            out,
        )
        .expect("server group");
        let me = nso.node().index();
        nso.register_group_servant(
            gid(),
            Box::new(move |_: &str, _: &[u8]| Bytes::from(vec![me as u8])),
        );
    }
    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

struct Client {
    servers: Vec<NodeId>,
    manager_index: usize,
    completed: u32,
    rebinds: u32,
    binding: Option<GroupHandle>,
    outstanding: Option<u64>,
}

impl Client {
    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let manager = self.servers[self.manager_index % self.servers.len()];
        let _ = nso.bind(
            gid(),
            BindOptions::open(manager).with_time_silence(Duration::from_millis(20)),
            now,
            out,
        );
    }
    fn issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        if let Some(b) = self.binding.clone() {
            if let Ok(call) = b.invoke(nso, "ping", Bytes::new(), ReplyMode::First, now, out) {
                self.outstanding = Some(call.number);
            }
        }
    }
}

impl NsoApp for Client {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(Duration::from_millis(5), tags::APP_BASE);
        out.set_timer(Duration::from_millis(200), tags::APP_BASE + 1);
    }
    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag == tags::APP_BASE {
            self.bind(nso, now, out);
        } else {
            if let (Some(b), Some(number)) = (self.binding.clone(), self.outstanding) {
                let _ = b.retry(nso, number, now, out);
            }
            out.set_timer(Duration::from_millis(200), tags::APP_BASE + 1);
        }
    }
    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                match self.outstanding {
                    Some(number) => {
                        let _ = binding.retry(nso, number, now, out);
                    }
                    None => self.issue(nso, now, out),
                }
            }
            NsoOutput::BindFailed { .. } => {
                self.manager_index += 1;
                self.binding = None;
                self.bind(nso, now, out);
            }
            NsoOutput::BindingBroken { .. } => {
                self.rebinds += 1;
                self.manager_index += 1;
                self.binding = None;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { .. } => {
                self.outstanding = None;
                self.completed += 1;
                self.issue(nso, now, out);
            }
            _ => {}
        }
    }
}

#[test]
fn client_side_of_a_partition_keeps_working() {
    let mut sim = Sim::new(SimConfig::lan(61));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(Server {
                    members: servers.clone(),
                }),
            )),
        );
    }
    let client = NodeId::from_index(3);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(Client {
                servers: servers.clone(),
                manager_index: 0,
                completed: 0,
                rebinds: 0,
                binding: None,
                outstanding: None,
            }),
        )),
    );

    // Partition the client's manager (s0) away from everyone else.
    sim.schedule_partition(
        SimTime::from_millis(80),
        vec![vec![servers[0]], vec![servers[1], servers[2], client]],
    );
    sim.run_until(SimTime::from_secs(6));
    let mid = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<Client>()
        .unwrap();
    let (mid_completed, mid_rebinds) = (mid.completed, mid.rebinds);
    assert!(
        mid_rebinds >= 1,
        "the client rebound away from the isolated manager"
    );
    assert!(
        mid_completed > 50,
        "traffic continued on the majority side: {mid_completed}"
    );

    // The majority side's server group excluded s0.
    let view = sim
        .node_ref::<NsoNode>(servers[1])
        .unwrap()
        .nso()
        .view_of(&gid())
        .expect("view")
        .clone();
    assert!(
        !view.contains(servers[0]),
        "majority view excludes the isolated server"
    );
    assert_eq!(view.len(), 2);

    // Heal; traffic keeps flowing (the departed replica stays excluded
    // until an explicit re-join, which is the paper's model: the
    // membership service removes it, applications decide about merges).
    sim.schedule_heal(SimTime::from_secs(6));
    sim.run_until(SimTime::from_secs(9));
    let end = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<Client>()
        .unwrap();
    assert!(
        end.completed > mid_completed + 50,
        "traffic continued after healing"
    );
}

#[test]
fn peer_partition_splits_and_both_sides_deliver_internally() {
    struct Peer {
        members: Vec<NodeId>,
        delivered: Vec<(NodeId, Bytes)>,
    }
    impl NsoApp for Peer {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            nso.create_peer_group(
                GroupId::new("pp"),
                self.members.clone(),
                GroupConfig::peer().with_time_silence(Duration::from_millis(15)),
                now,
                out,
            )
            .expect("peer group");
            out.set_timer(Duration::from_millis(30), tags::APP_BASE);
        }
        fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
            let body = format!("{}@{}", nso.node(), now);
            if let Some(peer) = nso.handle_for(&GroupId::new("pp")) {
                let _ = peer.send(nso, Bytes::from(body), DeliveryOrder::Total, now, out);
            }
            out.set_timer(Duration::from_millis(40), tags::APP_BASE);
        }
        fn on_output(&mut self, _: &mut Nso, output: NsoOutput, _: SimTime, _: &mut Outbox) {
            if let NsoOutput::PeerDeliver {
                sender, payload, ..
            } = output
            {
                self.delivered.push((sender, payload));
            }
        }
    }

    let mut sim = Sim::new(SimConfig::lan(62));
    let members: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();
    for &m in &members {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                m,
                Box::new(Peer {
                    members: members.clone(),
                    delivered: Vec::new(),
                }),
            )),
        );
    }
    sim.schedule_partition(
        SimTime::from_millis(200),
        vec![vec![members[0], members[1]], vec![members[2], members[3]]],
    );
    sim.run_until(SimTime::from_secs(8));

    // Each side's post-partition deliveries involve only its own members.
    let cutoff = SimTime::from_millis(800); // after both sides re-formed
    for (idx, side) in [[0usize, 1], [2, 3]].iter().enumerate() {
        for &m in side {
            let node = sim.node_ref::<NsoNode>(members[m]).unwrap();
            let view = node.nso().view_of(&GroupId::new("pp")).expect("view");
            assert_eq!(view.len(), 2, "side {idx} re-formed as a pair");
            let peer = node.app_ref::<Peer>().unwrap();
            assert!(
                peer.delivered.len() > 20,
                "member {m} kept delivering after the split"
            );
            let _ = cutoff;
        }
    }
}
