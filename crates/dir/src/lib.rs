//! Replicated group directory and durable log/snapshot recovery for
//! Newtop.
//!
//! Two halves, both new in PR 9:
//!
//! * **Durable state + crash recovery** ([`log`], [`snapshot`],
//!   [`store`], [`recovery`], [`harness`]): every delivery and view
//!   installation a node makes is appended to a CRC-framed, CDR-encoded
//!   per-node log with batched fsyncs, compacted periodically into
//!   snapshots. A killed node cold-restarts, replays snapshot + log
//!   suffix, rejoins its groups through the last durably known view and
//!   fetches the deliveries it missed as chunked *delta* state transfer
//!   from its contiguous-ack floor — not the full history.
//!
//! * **Replicated directory** ([`directory`], plus the wire types in
//!   `newtop::directory`): a well-known bootstrap group maps service
//!   names to group records (configuration, member set, view id).
//!   Registrations replicate through the GCS itself — staged at any
//!   member, multicast with total order through the directory's own
//!   peer group, applied in delivery order — so every member answers
//!   resolves from an identical local table. Clients bind by *name*
//!   (`BindTarget::Resolve`) with a TTL'd cache invalidated on view
//!   changes.
//!
//! The simulator models crash/restart natively
//! (`Sim::schedule_restart`); stable storage lives in a [`SharedStore`]
//! held outside the volatile node state, exactly as a disk survives a
//! process.

#![warn(missing_docs)]

pub mod app;
pub mod directory;
pub mod harness;
pub mod log;
pub mod recovery;
pub mod snapshot;
pub mod store;

pub use app::{register_service, DirectoryApp, DIR_GROUP};
pub use directory::{shared_directory, DirectoryState, SharedDirectory};
pub use harness::{DurableGcsNode, DurableHarness, RecoveryMsg};
pub use log::{DeliveredRec, LogError, LogRecord};
pub use recovery::{replay, RecoveredState};
pub use snapshot::{GroupSnapshot, NodeSnapshot};
pub use store::{shared_store, DurableStore, SharedStore};
