/root/repo/target/debug/deps/newtop-dcd0c7900f1c3f2b.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop-dcd0c7900f1c3f2b.rmeta: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/nso.rs:
crates/core/src/proxy.rs:
crates/core/src/simnode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
