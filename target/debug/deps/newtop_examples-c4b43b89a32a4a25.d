/root/repo/target/debug/deps/newtop_examples-c4b43b89a32a4a25.d: examples/src/lib.rs

/root/repo/target/debug/deps/libnewtop_examples-c4b43b89a32a4a25.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libnewtop_examples-c4b43b89a32a4a25.rmeta: examples/src/lib.rs

examples/src/lib.rs:
