//! NewTop's flexible object group invocation layer (§4 of the paper).
//!
//! The invocation layer sits on the group communication service and
//! implements the three interaction modes the paper identifies, each with
//! its customisations:
//!
//! * **request-reply** — a client invokes a replicated service through a
//!   *client/server group*, either **closed** (the client joins a group
//!   containing every server and multicasts directly — Fig. 3(i), best on
//!   a LAN) or **open** (the client/server group contains the client and
//!   one server, the **request manager**, which re-multicasts the request
//!   inside the server group and relays the replies — Fig. 3(ii)/Fig. 4,
//!   best over a WAN);
//! * **group-to-group request-reply** — a whole client group invokes a
//!   server group through a shared request manager and a *client monitor
//!   group* (Fig. 6);
//! * **peer participation** — plain one-way multicasts (no extra
//!   machinery; provided by the GCS directly).
//!
//! Reply collection supports the paper's four primitives: **one-way
//! send**, **wait-for-first**, **wait-for-majority** and **wait-for-all**;
//! the open-group path supports the **restricted group** optimisation
//! (all clients share one request manager — the view's lowest-ranked
//! member) and **asynchronous message forwarding** (the manager answers
//! itself and one-way forwards — the passive-replication configuration).
//!
//! Failure handling follows §4.1: a request-manager crash breaks the
//! binding; the client *rebinds* to another server and retries with the
//! same call number, and servers keep a last-reply cache so retries are
//! answered without re-execution.
//!
//! The state machines here ([`client::ClientCore`],
//! [`server::ServerCore`], [`g2g::G2gCaller`]) are pure: they consume
//! delivered group messages and emit [`api::InvCommand`]s that the owning
//! NewTop service object executes (group multicasts or direct ORB
//! oneways).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod client;
pub mod g2g;
pub mod server;

pub use api::{
    BindingStyle, CallId, InvCommand, InvMessage, OpenOptimisation, Replication, ReplyMode,
};
pub use client::{ClientCore, ClientEvent};
pub use g2g::G2gCaller;
pub use server::ServerCore;

/// The ORB operation name carrying direct (non-group) invocation-layer
/// messages between NSOs, e.g. closed-group replies sent straight to the
/// client.
pub const INV_OPERATION: &str = "inv";
