/root/repo/target/debug/deps/threaded-70770c005781182c.d: tests/tests/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libthreaded-70770c005781182c.rmeta: tests/tests/threaded.rs Cargo.toml

tests/tests/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
