#!/usr/bin/env bash
# Full fault-injection campaign: 500 seeds per cell across every fault
# plan x {symmetric,asymmetric} x {open,closed membership}, all five
# protocol invariants checked, plus the mutation runs that validate the
# checker itself. Offline-friendly. Takes ~10 minutes.
set -euo pipefail

cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-500}"

echo "==> build campaign runner (release)"
cargo build --release --offline -p newtop-check

echo "==> campaign: $SEEDS seeds per cell"
./target/release/campaign --seeds "$SEEDS"

echo "==> mutation runs (checker must catch every injected bug)"
for m in swap-order dup-delivery drop-delivery drop-view; do
    ./target/release/campaign --seeds 10 --mutate "$m" --quiet
done

echo "OK"
