//! A bounded MPMC channel with overload statistics.
//!
//! The workspace's vendored `crossbeam` stand-in implements channels on
//! `std::sync::mpsc`, where `bounded()` does not actually enforce its
//! capacity. This module provides a real bounded queue on a
//! `Mutex<VecDeque>` + condvars with the two disciplines the stack
//! needs:
//!
//! * [`Sender::try_send`] — *shed*: a full queue rejects the message
//!   immediately with [`TrySendError::Full`] and bumps the shared
//!   [`QueueStats::shed`] counter. Used where the producer must never
//!   block (the runtime's output stream, the in-process network).
//! * [`Sender::send`] — *backpressure*: a full queue blocks the
//!   producer until space frees (counted in [`QueueStats::blocked`]).
//!   Used where the producer can afford to wait and loss is worse than
//!   latency (the TCP reader thread).
//!
//! Receivers implement the same `poll_for_select` probe as the vendored
//! crossbeam receiver, so they compose with its `select!` macro.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// Under `--cfg loom` the lock and condvar come from the model-checking
// harness, which injects preemption points at every acquisition so the
// loom tests (and the regular unit tests, rerun under the same cfg)
// explore adversarial schedules. The std and loom APIs are identical,
// including poison recovery, so no other line of this module changes.
#[cfg(loom)]
use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the message was shed (and counted).
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the queue is empty and
/// every sender is gone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

#[derive(Debug, Default)]
struct StatCells {
    shed: AtomicU64,
    blocked: AtomicU64,
    peak_depth: AtomicU64,
}

/// A live handle onto a queue's overload counters. Cheap to clone;
/// reads reflect the queue's state at the moment of the call.
#[derive(Clone, Debug)]
pub struct QueueStats {
    cells: Arc<StatCells>,
    capacity: usize,
}

impl QueueStats {
    /// Messages rejected by [`Sender::try_send`] because the queue was
    /// full.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.cells.shed.load(Ordering::Relaxed)
    }

    /// Times a [`Sender::send`] had to wait for space (backpressure
    /// events, not messages lost).
    #[must_use]
    pub fn blocked(&self) -> u64 {
        self.cells.blocked.load(Ordering::Relaxed)
    }

    /// Highest queue depth ever observed.
    #[must_use]
    pub fn peak_depth(&self) -> u64 {
        self.cells.peak_depth.load(Ordering::Relaxed)
    }

    /// The queue's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    stats: Arc<StatCells>,
    capacity: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, inner: &mut Inner<T>, value: T) {
        inner.queue.push_back(value);
        let depth = inner.queue.len() as u64;
        self.stats.peak_depth.fetch_max(depth, Ordering::Relaxed);
        self.not_empty.notify_one();
    }
}

/// The sending half of a bounded queue. Clones share the queue.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded queue. Clones share the queue, each
/// message going to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded queue with the given capacity (at least 1).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        stats: Arc::new(StatCells::default()),
        capacity: capacity.max(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake receivers so they observe the disconnect.
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends without blocking. A full queue sheds the message (counted
    /// in [`QueueStats::shed`]) and returns it in
    /// [`TrySendError::Full`].
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.queue.len() >= self.shared.capacity {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(TrySendError::Full(value));
        }
        self.shared.push(&mut inner, value);
        Ok(())
    }

    /// Sends, blocking while the queue is full (backpressure). Fails
    /// only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        if inner.queue.len() >= self.shared.capacity && inner.receivers > 0 {
            self.shared.stats.blocked.fetch_add(1, Ordering::Relaxed);
        }
        while inner.queue.len() >= self.shared.capacity {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        self.shared.push(&mut inner, value);
        Ok(())
    }

    /// The number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True if the queue holds no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() >= self.shared.capacity
    }

    /// A live handle onto this queue's overload counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            cells: Arc::clone(&self.shared.stats),
            capacity: self.shared.capacity,
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if res.timed_out() && inner.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// The number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True if the queue holds no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A live handle onto this queue's overload counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            cells: Arc::clone(&self.shared.stats),
            capacity: self.shared.capacity,
        }
    }

    /// Polls once for the vendored crossbeam `select!` macro:
    /// `Some(Ok(v))` on a message, `Some(Err(_))` on disconnect, `None`
    /// when empty.
    #[doc(hidden)]
    pub fn poll_for_select(&self) -> Option<Result<T, RecvError>> {
        match self.try_recv() {
            Ok(v) => Some(Ok(v)),
            Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
            Err(TryRecvError::Empty) => None,
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow::Sender(cap={})", self.shared.capacity)
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow::Receiver(cap={})", self.shared.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn try_send_sheds_when_full_and_counts_it() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert!(matches!(tx.try_send(4), Err(TrySendError::Full(4))));
        assert_eq!(tx.stats().shed(), 2);
        assert_eq!(tx.stats().peak_depth(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(5).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn blocking_send_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let producer = thread::spawn(move || {
            // Blocks until the consumer drains the first message.
            tx.send(2).unwrap();
            tx.stats().blocked()
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        let blocked = producer.join().unwrap();
        assert_eq!(blocked, 1);
        assert_eq!(rx.stats().shed(), 0);
    }

    #[test]
    fn disconnects_are_observed() {
        let (tx, rx) = bounded::<u32>(4);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert!(matches!(tx.send(1), Err(SendError(1))));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn capacity_is_enforced_across_cloned_senders() {
        let (tx, rx) = bounded(3);
        let tx2 = tx.clone();
        tx.try_send(1).unwrap();
        tx2.try_send(2).unwrap();
        tx.try_send(3).unwrap();
        assert!(matches!(tx2.try_send(4), Err(TrySendError::Full(4))));
        drop(tx);
        drop(tx2);
        let drained: Vec<u32> = rx.try_iter().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
    }

    #[test]
    fn poll_for_select_matches_crossbeam_contract() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.poll_for_select(), None);
        tx.send(7).unwrap();
        assert_eq!(rx.poll_for_select(), Some(Ok(7)));
        drop(tx);
        assert_eq!(rx.poll_for_select(), Some(Err(RecvError)));
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        // Regression test for poison propagation: every internal lock
        // acquisition recovers with `PoisonError::into_inner` instead
        // of unwrapping, so one panicking thread must not take the
        // queue down for every other handle. Poison the mutex directly
        // (the public API never runs user code under the lock, so this
        // is the only way the state can arise).
        let (tx, rx) = bounded(4);
        tx.try_send(1).unwrap();
        let shared = Arc::clone(&tx.shared);
        let poisoner = thread::spawn(move || {
            let _guard = shared.inner.lock().unwrap();
            panic!("poisoning the queue lock on purpose");
        });
        assert!(poisoner.join().is_err(), "poisoner thread must panic");
        // Every operation still works and the queued state is intact.
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_under_contention_delivers_everything_within_bound() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<u32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
        assert!(rx.stats().peak_depth() <= 8);
    }
}
