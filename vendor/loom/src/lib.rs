//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! The real loom exhaustively enumerates thread interleavings of a test
//! body by running it under a cooperative scheduler. That crate is not
//! available in this offline workspace, so this stand-in keeps the same
//! API shape — `loom::model`, `loom::thread`, `loom::sync` — but checks
//! by *randomized schedule exploration* instead: [`model`] runs the test
//! body many times on real threads while the `sync` wrappers inject
//! pseudo-random preemption points (yields and zero-length sleeps) at
//! every lock acquisition and condvar operation, perturbing the OS
//! schedule differently on each iteration.
//!
//! That is strictly weaker than exhaustive model checking — it can miss
//! rare interleavings — but it explores far more schedules than a plain
//! `cargo test` run, and code written against this API is source
//! compatible with the real crate: swap the path dependency for the
//! registry crate and the same `#[cfg(loom)]` tests become exhaustive.
//!
//! Determinism: every preemption decision derives from a per-iteration
//! seed and the thread's spawn order, never from wall-clock time or OS
//! entropy, so a given `LOOM_ITERS` value replays the same exploration
//! sequence (modulo the OS scheduler itself, which randomized
//! exploration deliberately leans on).

#![warn(missing_docs)]

mod sched {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// Seed for the current `model` iteration; folded into each
    /// thread's local PRNG state the first time that thread preempts.
    static ITER_SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    /// Monotone spawn counter: gives each thread a distinct, schedule-
    /// independent stream without consulting OS thread ids.
    static SPAWN_SALT: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static RNG: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn set_iteration(iter: u64) {
        // SplitMix64 finalizer spreads consecutive iteration numbers
        // into well-separated seeds.
        let mut z = iter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ITER_SEED.store(z ^ (z >> 31) | 1, Ordering::SeqCst);
    }

    pub(crate) fn reseed_thread() {
        let salt = SPAWN_SALT.fetch_add(1, Ordering::SeqCst);
        RNG.with(|c| c.set(ITER_SEED.load(Ordering::SeqCst) ^ salt.rotate_left(17)));
    }

    fn next(c: &Cell<u64>) -> u64 {
        let mut s = c.get();
        if s == 0 {
            s = ITER_SEED.load(Ordering::SeqCst);
        }
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        c.set(s);
        s
    }

    /// A potential context switch: sometimes yield, rarely park for a
    /// scheduler quantum, usually proceed. Called by every `sync`
    /// wrapper before touching the underlying primitive.
    pub(crate) fn preempt() {
        RNG.with(|c| match next(c) % 16 {
            0..=3 => std::thread::yield_now(),
            4 => std::thread::sleep(Duration::from_micros(50)),
            _ => {}
        });
    }
}

/// Runs `body` under randomized schedule exploration.
///
/// The body is executed `LOOM_ITERS` times (default 64); each iteration
/// reseeds the preemption PRNG so lock/condvar operations interleave
/// differently. A panic in any iteration propagates immediately, so a
/// failing schedule fails the test the way real loom does.
pub fn model<F>(body: F)
where
    F: Fn(),
{
    let iters = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64);
    for iter in 0..iters {
        sched::set_iteration(iter);
        sched::reseed_thread();
        body();
    }
}

/// Thread spawning with a preemption point at thread start, mirroring
/// `loom::thread`.
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawns a thread whose preemption stream is seeded from the
    /// current model iteration.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            crate::sched::reseed_thread();
            crate::sched::preempt();
            f()
        })
    }

    /// Explicit preemption point.
    pub fn yield_now() {
        crate::sched::preempt();
        std::thread::yield_now();
    }
}

/// Synchronization primitives with injected preemption points,
/// mirroring the `loom::sync` module tree.
pub mod sync {
    pub use std::sync::{Arc, LockResult, WaitTimeoutResult};

    /// Re-export of std atomics (the stand-in perturbs schedules at
    /// lock boundaries, not per atomic op).
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// Guard type is std's own, so `PoisonError::into_inner` recovery
    /// code behaves identically under both cfgs.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    /// A `std::sync::Mutex` that may yield before acquiring.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquires the lock after a potential preemption point.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            crate::sched::preempt();
            self.0.lock()
        }
    }

    /// A `std::sync::Condvar` with preemption points around waits and
    /// notifications.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates a new condition variable.
        #[must_use]
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Waits on the condvar; preempts before sleeping so the
        /// notify/wait race is explored from both sides.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            crate::sched::preempt();
            self.0.wait(guard)
        }

        /// Waits with a timeout.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            crate::sched::preempt();
            self.0.wait_timeout(guard, dur)
        }

        /// Wakes one waiter, preempting first so the waiter may observe
        /// either the pre- or post-notify state.
        pub fn notify_one(&self) {
            crate::sched::preempt();
            self.0.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            crate::sched::preempt();
            self.0.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_runs_body_the_configured_number_of_times() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static RUNS: AtomicU64 = AtomicU64::new(0);
        model(|| {
            RUNS.fetch_add(1, Ordering::SeqCst);
        });
        let expected = std::env::var("LOOM_ITERS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        assert_eq!(RUNS.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn wrapped_mutex_and_condvar_round_trip() {
        let pair = sync::Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
        let p2 = sync::Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    }
}
