//! One function per table/figure of the paper's evaluation.
//!
//! Each function runs the relevant scenarios and returns labelled series
//! (or rows) matching what the paper plots. The bench targets print them;
//! the tests here assert the qualitative *shapes* the paper reports.

use std::time::Duration;

use newtop_gcs::group::OrderProtocol;
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::site::Site;
use newtop_net::stats::{Series, TextTable};

use crate::scenario::{
    run_peer, run_plain, run_request_reply, BindingPolicy, PeerScenario, Placement,
    RequestReplyResult, RequestReplyScenario,
};

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Placement label.
    pub placement: String,
    /// Timed request, milliseconds.
    pub response_ms: f64,
    /// Requests per second.
    pub throughput: f64,
}

/// **Table 1** — performance of plain CORBA (no group service): one
/// client, one server, four placements.
#[must_use]
pub fn table1_plain_corba(seed: u64) -> Vec<Table1Row> {
    let cases = [
        ("client and server on LAN", Site::Lan, Site::Lan),
        (
            "client in Pisa, server in Newcastle",
            Site::Newcastle,
            Site::Pisa,
        ),
        (
            "client in London, server in Newcastle",
            Site::Newcastle,
            Site::London,
        ),
        ("client in Pisa, server in London", Site::London, Site::Pisa),
    ];
    cases
        .iter()
        .map(|(label, server, client)| {
            let r = run_plain(*server, &[*client], Duration::from_secs(4), seed);
            Table1Row {
                placement: (*label).to_owned(),
                response_ms: r.mean_response.as_secs_f64() * 1e3,
                throughput: r.throughput,
            }
        })
        .collect()
}

fn sweep_to_series(
    label: &str,
    sweep: &[usize],
    mut run: impl FnMut(usize) -> RequestReplyResult,
) -> (Series, Series) {
    let mut ms = Series::new(format!("{label} (ms)"));
    let mut rps = Series::new(format!("{label} (req/s)"));
    for &n in sweep {
        let r = run(n);
        ms.push(n as f64, r.mean_response.as_secs_f64() * 1e3);
        rps.push(n as f64, r.throughput);
    }
    (ms, rps)
}

/// The non-replicated-via-NewTop scenario common to Graphs 1–10: a
/// single-member server group invoked through an open binding.
fn nonreplicated_scenario(placement: Placement, clients: usize, seed: u64) -> RequestReplyScenario {
    RequestReplyScenario {
        servers: 1,
        binding: BindingPolicy::OpenRestricted,
        mode: ReplyMode::First,
        ..RequestReplyScenario::paper_default(placement, clients, seed)
    }
}

/// **Graphs 1–4** — a non-replicated server accessed *via* the NewTop
/// service: response time and throughput vs client count, on the LAN
/// (graphs 1–2) or with distant clients (graphs 3–4).
#[must_use]
pub fn graphs_1_4_nonreplicated(wan: bool, sweep: &[usize], seed: u64) -> (Series, Series) {
    let placement = if wan {
        Placement::ServersLanClientsWan
    } else {
        Placement::AllLan
    };
    sweep_to_series("NewTop non-replicated", sweep, |n| {
        run_request_reply(&nonreplicated_scenario(placement, n, seed))
    })
}

/// The §5.1 comparison baseline: plain CORBA at the same placement and
/// client count.
#[must_use]
pub fn plain_corba_sweep(wan: bool, sweep: &[usize], seed: u64) -> (Series, Series) {
    let placement = if wan {
        Placement::ServersLanClientsWan
    } else {
        Placement::AllLan
    };
    sweep_to_series("plain CORBA", sweep, |n| {
        let sites: Vec<Site> = (0..n).map(|i| placement.client_site(i)).collect();
        run_plain(
            placement.server_site(0),
            &sites,
            placement.default_duration(),
            seed,
        )
    })
}

/// **Graphs 5–10** — the optimised open group (restricted + asynchronous
/// forwarding; the passive-replication configuration) against the
/// non-replicated server, for one placement. Returns
/// `(optimised ms, optimised req/s, non-replicated ms, non-replicated req/s)`.
#[must_use]
pub fn graphs_5_10_optimised(
    placement: Placement,
    sweep: &[usize],
    seed: u64,
) -> (Series, Series, Series, Series) {
    let (opt_ms, opt_rps) = sweep_to_series("optimised open async", sweep, |n| {
        run_request_reply(&RequestReplyScenario {
            servers: 3,
            binding: BindingPolicy::OpenRestricted,
            mode: ReplyMode::First,
            replication: Replication::Passive,
            optimisation: OpenOptimisation::AsyncForwarding,
            ..RequestReplyScenario::paper_default(placement, n, seed)
        })
    });
    let (non_ms, non_rps) = sweep_to_series("non-replicated", sweep, |n| {
        run_request_reply(&nonreplicated_scenario(placement, n, seed))
    });
    (opt_ms, opt_rps, non_ms, non_rps)
}

/// **Graphs 11–16** — closed vs open group invocation (3 active replicas,
/// wait-for-all, asymmetric ordering), for one placement. Returns
/// `(closed ms, closed req/s, open ms, open req/s)`.
#[must_use]
pub fn graphs_11_16_closed_open(
    placement: Placement,
    sweep: &[usize],
    seed: u64,
) -> (Series, Series, Series, Series) {
    let (closed_ms, closed_rps) = sweep_to_series("closed", sweep, |n| {
        run_request_reply(&RequestReplyScenario {
            binding: BindingPolicy::Closed,
            ..RequestReplyScenario::paper_default(placement, n, seed)
        })
    });
    let (open_ms, open_rps) = sweep_to_series("open", sweep, |n| {
        run_request_reply(&RequestReplyScenario {
            binding: BindingPolicy::OpenAnyServer,
            ..RequestReplyScenario::paper_default(placement, n, seed)
        })
    });
    (closed_ms, closed_rps, open_ms, open_rps)
}

/// **Graphs 17–18** — peer participation throughput (msgs/s) vs group
/// size, symmetric vs asymmetric ordering. `wan` selects the
/// geographically separated placement of the published graphs; `false`
/// gives the LAN variant discussed in the text.
#[must_use]
pub fn graphs_17_18_peer(wan: bool, sizes: &[usize], seed: u64) -> (Series, Series) {
    let mut symmetric = Series::new("symmetric (msg/s)");
    let mut asymmetric = Series::new("asymmetric (msg/s)");
    for &members in sizes {
        for (series, ordering) in [
            (&mut symmetric, OrderProtocol::Symmetric),
            (&mut asymmetric, OrderProtocol::Asymmetric),
        ] {
            // On the LAN the paper's members flood (exposing the
            // sequencer's CPU bottleneck); over the WAN transit times,
            // not CPU, dominate — pace accordingly.
            let pace = if wan {
                Duration::from_millis(6)
            } else {
                Duration::from_millis(1)
            };
            let r = run_peer(&PeerScenario {
                members,
                wan,
                ordering,
                payload_len: 100,
                pace,
                time_silence: Duration::from_millis(25),
                duration: if wan {
                    Duration::from_secs(8)
                } else {
                    Duration::from_secs(3)
                },
                seed,
            });
            series.push(members as f64, r.group_throughput);
        }
    }
    (symmetric, asymmetric)
}

/// Protocol-metrics table accompanying the peer figures: per ordering ×
/// group size, the group throughput plus the counters behind §5.2's
/// explanation of the symmetric/asymmetric gap. `records/delivery` is
/// ≈1 under the asymmetric protocol (every delivery waits for the
/// sequencer's redirected ordering record) and exactly 0 under the
/// symmetric one — the paper's asymmetric-redirection claim, made
/// visible.
#[must_use]
pub fn metrics_peer(wan: bool, sizes: &[usize], seed: u64) -> TextTable {
    let mut table = TextTable::new(
        "peer protocol metrics (per run)",
        &[
            "members",
            "ordering",
            "msg/s",
            "gcs msgs",
            "order records",
            "records/delivery",
            "nulls",
            "suspicions",
        ],
    );
    for &members in sizes {
        for (ordering, name) in [
            (OrderProtocol::Symmetric, "symmetric"),
            (OrderProtocol::Asymmetric, "asymmetric"),
        ] {
            let r = run_peer(&PeerScenario {
                members,
                wan,
                ordering,
                payload_len: 100,
                pace: Duration::from_millis(if wan { 6 } else { 1 }),
                time_silence: Duration::from_millis(25),
                duration: Duration::from_secs(if wan { 8 } else { 3 }),
                seed,
            });
            let c = r.counts;
            table.row(vec![
                members.to_string(),
                name.to_owned(),
                format!("{:.1}", r.group_throughput),
                c.msgs_sent.to_string(),
                c.order_records.to_string(),
                format!("{:.2}", c.records_per_delivery()),
                c.nulls.to_string(),
                c.suspicions.to_string(),
            ]);
        }
    }
    table
}

/// Protocol-metrics table accompanying the closed/open figures: per
/// binding style, messages per completed request, ordering records per
/// delivery, suspicion counts and reply-cache dedups.
#[must_use]
pub fn metrics_closed_open(placement: Placement, clients: usize, seed: u64) -> TextTable {
    let mut table = TextTable::new(
        "request-reply protocol metrics (per run)",
        &[
            "binding",
            "req/s",
            "msgs/request",
            "order records",
            "records/delivery",
            "suspicions",
            "dedups",
        ],
    );
    for (binding, name) in [
        (BindingPolicy::Closed, "closed"),
        (BindingPolicy::OpenAnyServer, "open"),
    ] {
        let r = run_request_reply(&RequestReplyScenario {
            binding,
            ..RequestReplyScenario::paper_default(placement, clients, seed)
        });
        let c = r.counts;
        table.row(vec![
            name.to_owned(),
            format!("{:.1}", r.throughput),
            format!("{:.1}", c.msgs_per_request(r.completed)),
            c.order_records.to_string(),
            format!("{:.2}", c.records_per_delivery()),
            c.suspicions.to_string(),
            c.deduped.to_string(),
        ]);
    }
    table
}

/// §5.1.3's omitted figures — ordering protocol × binding style, one
/// placement, fixed client count. Returns rows
/// `(label, mean ms, req/s)`.
#[must_use]
pub fn ablation_ordering_x_style(
    placement: Placement,
    clients: usize,
    seed: u64,
) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for (ordering, oname) in [
        (OrderProtocol::Asymmetric, "asymmetric"),
        (OrderProtocol::Symmetric, "symmetric"),
    ] {
        for (binding, bname) in [
            (BindingPolicy::Closed, "closed"),
            (BindingPolicy::OpenAnyServer, "open"),
        ] {
            let r = run_request_reply(&RequestReplyScenario {
                binding,
                ordering,
                ..RequestReplyScenario::paper_default(placement, clients, seed)
            });
            rows.push((
                format!("{bname} / {oname}"),
                r.mean_response.as_secs_f64() * 1e3,
                r.throughput,
            ));
        }
    }
    rows
}

/// Ablation of the §4.2 optimisations: plain open vs restricted vs
/// restricted+async forwarding (3 replicas, wait-for-first). Returns rows
/// `(label, mean ms, req/s)` at a fixed client count.
#[must_use]
pub fn ablation_open_optimisations(
    placement: Placement,
    clients: usize,
    seed: u64,
) -> Vec<(String, f64, f64)> {
    let cases = [
        (
            "open (any manager)",
            BindingPolicy::OpenAnyServer,
            OpenOptimisation::None,
            Replication::Active,
        ),
        (
            "restricted",
            BindingPolicy::OpenRestricted,
            OpenOptimisation::Restricted,
            Replication::Active,
        ),
        (
            "restricted + async forwarding",
            BindingPolicy::OpenRestricted,
            OpenOptimisation::AsyncForwarding,
            Replication::Passive,
        ),
    ];
    cases
        .iter()
        .map(|(label, binding, optimisation, replication)| {
            let r = run_request_reply(&RequestReplyScenario {
                binding: *binding,
                optimisation: *optimisation,
                replication: *replication,
                mode: ReplyMode::First,
                ..RequestReplyScenario::paper_default(placement, clients, seed)
            });
            (
                (*label).to_owned(),
                r.mean_response.as_secs_f64() * 1e3,
                r.throughput,
            )
        })
        .collect()
}

/// Ablation of the time-silence period: peer-group delivery latency under
/// the symmetric protocol as the null-message period grows. The senders
/// are deliberately *sparse* (one multicast per 80 ms), so delivery is
/// gated by the other members' nulls rather than their data — the regime
/// where the time-silence period matters, and why event-driven groups
/// suit request-reply while lively peers want short periods.
#[must_use]
pub fn ablation_time_silence(periods_ms: &[u64], seed: u64) -> Series {
    let mut s = Series::new("mean delivery latency (ms)");
    for &p in periods_ms {
        let r = run_peer(&PeerScenario {
            members: 3,
            wan: false,
            ordering: OrderProtocol::Symmetric,
            payload_len: 100,
            pace: Duration::from_millis(80),
            time_silence: Duration::from_millis(p),
            duration: Duration::from_secs(4),
            seed,
        });
        s.push(p as f64, r.mean_latency.as_secs_f64() * 1e3);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 20;

    #[test]
    fn table1_shape_matches_the_paper() {
        let rows = table1_plain_corba(SEED);
        assert_eq!(rows.len(), 4);
        // LAN fastest; Pisa–Newcastle slowest of the WAN pairs; ordering
        // LAN < London–Newcastle < Pisa–London < Pisa–Newcastle.
        assert!(rows[0].response_ms < rows[2].response_ms);
        assert!(rows[2].response_ms < rows[3].response_ms);
        assert!(rows[3].response_ms < rows[1].response_ms);
        // Throughput is the reciprocal story.
        assert!(rows[0].throughput > rows[1].throughput);
    }

    #[test]
    fn graphs_1_2_lan_saturation_shape() {
        let (ms, rps) = graphs_1_4_nonreplicated(false, &[1, 4, 8], SEED);
        // Response time grows with clients on the LAN...
        let t1 = ms.y_at(1.0).unwrap();
        let t8 = ms.y_at(8.0).unwrap();
        assert!(t8 > t1 * 2.0, "t1={t1} t8={t8}");
        // ...while throughput plateaus: going from 4 to 8 clients barely
        // moves it (the server saturates with a handful of clients),
        // unlike the WAN case where it keeps scaling with client count.
        let r4 = rps.y_at(4.0).unwrap();
        let r8 = rps.y_at(8.0).unwrap();
        assert!(r8 < r4 * 1.35, "r4={r4} r8={r8}");
    }

    #[test]
    fn graphs_3_4_wan_scaling_shape() {
        let (ms, rps) = graphs_1_4_nonreplicated(true, &[1, 4, 8], SEED);
        // Over the WAN throughput grows with client count...
        let r1 = rps.y_at(1.0).unwrap();
        let r8 = rps.y_at(8.0).unwrap();
        assert!(r8 > r1 * 3.0, "r1={r1} r8={r8}");
        // ...and response times are not much affected.
        let t1 = ms.y_at(1.0).unwrap();
        let t8 = ms.y_at(8.0).unwrap();
        assert!(t8 < t1 * 2.0, "t1={t1} t8={t8}");
    }

    #[test]
    fn newtop_single_client_costs_a_few_times_plain_corba() {
        let (newtop_ms, _) = graphs_1_4_nonreplicated(false, &[1], SEED);
        let (plain_ms, _) = plain_corba_sweep(false, &[1], SEED);
        let ratio = newtop_ms.y_at(1.0).unwrap() / plain_ms.y_at(1.0).unwrap();
        // The paper reports ≈2.5×; accept a 1.5–5× band.
        assert!(ratio > 1.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn optimised_open_tracks_the_non_replicated_server() {
        let (opt_ms, _, non_ms, _) =
            graphs_5_10_optimised(Placement::ServersLanClientsWan, &[2], SEED);
        let opt = opt_ms.y_at(2.0).unwrap();
        let non = non_ms.y_at(2.0).unwrap();
        // "almost matches the performance of its non-replicated
        // counterpart" — allow 60 % overhead.
        assert!(opt < non * 1.6, "optimised {opt} vs non-replicated {non}");
    }

    #[test]
    fn open_beats_closed_when_clients_are_distant() {
        let (closed_ms, _, open_ms, _) =
            graphs_11_16_closed_open(Placement::ServersLanClientsWan, &[3], SEED);
        let c = closed_ms.y_at(3.0).unwrap();
        let o = open_ms.y_at(3.0).unwrap();
        assert!(o < c, "open {o} ms should beat closed {c} ms over the WAN");
    }

    #[test]
    fn closed_symmetric_collapses_as_the_paper_warns() {
        // §5.1.3: "the closed group approach does not perform well
        // [under symmetric ordering]... extensive protocol related
        // multicast traffic amongst all the members".
        let rows = ablation_ordering_x_style(Placement::AllLan, 4, SEED);
        let rate = |needle: &str| {
            rows.iter()
                .find(|(name, _, _)| name.contains(needle))
                .map(|(_, _, rps)| *rps)
                .expect("row present")
        };
        let closed_sym = rate("closed / symmetric");
        let closed_asym = rate("closed / asymmetric");
        let open_sym = rate("open / symmetric");
        let open_asym = rate("open / asymmetric");
        assert!(
            closed_sym * 4.0 < closed_asym,
            "closed/symmetric ({closed_sym}) collapses vs closed/asymmetric ({closed_asym})"
        );
        // "under the open group approach, there is little to choose
        // between the two" — within 2x either way.
        let ratio = open_sym / open_asym;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "open is ordering-agnostic: sym {open_sym} vs asym {open_asym}"
        );
    }

    #[test]
    fn each_open_optimisation_helps() {
        let rows = ablation_open_optimisations(Placement::ServersLanClientsWan, 4, SEED);
        assert_eq!(rows.len(), 3);
        let (_, plain_ms, _) = rows[0];
        let (_, async_ms, _) = rows[2];
        assert!(
            async_ms < plain_ms,
            "restricted + async forwarding ({async_ms} ms) beats plain open ({plain_ms} ms)"
        );
    }

    #[test]
    fn time_silence_gates_sparse_symmetric_delivery() {
        let s = ablation_time_silence(&[5, 50], SEED);
        let short = s.y_at(5.0).unwrap();
        let long = s.y_at(50.0).unwrap();
        assert!(
            long > short * 3.0,
            "a 10x longer period slows sparse delivery: {short} -> {long} ms"
        );
    }

    #[test]
    fn sequencer_records_flow_only_under_asymmetric_ordering() {
        // §5.2: the asymmetric protocol redirects every multicast through
        // the sequencer's ordering records; the symmetric protocol infers
        // order from vector time and sends none.
        let run = |ordering| {
            run_peer(&PeerScenario {
                members: 3,
                wan: false,
                ordering,
                payload_len: 100,
                pace: Duration::from_millis(5),
                time_silence: Duration::from_millis(25),
                duration: Duration::from_secs(1),
                seed: SEED,
            })
        };
        let asym = run(OrderProtocol::Asymmetric);
        let sym = run(OrderProtocol::Symmetric);
        assert!(asym.counts.delivered > 0 && sym.counts.delivered > 0);
        assert_eq!(sym.counts.order_records, 0, "symmetric sends no records");
        assert!(
            asym.counts.order_records > 0,
            "asymmetric orders through sequencer records"
        );
        let per = asym.counts.records_per_delivery();
        assert!(per > 0.2, "records per delivery {per}");
    }

    #[test]
    fn peer_symmetric_beats_asymmetric_over_wan() {
        let (sym, asym) = graphs_17_18_peer(true, &[3, 6], SEED);
        for n in [3.0, 6.0] {
            let s = sym.y_at(n).unwrap();
            let a = asym.y_at(n).unwrap();
            assert!(s > a, "n={n}: symmetric {s} should beat asymmetric {a}");
        }
    }
}
