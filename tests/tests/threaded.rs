//! The threaded runtime over real transports: the same NSO state machines
//! exercised with actual threads, wall-clock timers, and TCP sockets.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, NsoOutput};
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::channel::ChannelNetwork;
use newtop_net::site::NodeId;
use newtop_net::tcp::TcpEndpoint;
use newtop_rt::{NodeHandle, NodeRuntime, RuntimeOptions};

fn spawn_channel_cluster(n: usize) -> Vec<NodeHandle> {
    let net = ChannelNetwork::new();
    (0..n)
        .map(|i| {
            let id = NodeId::from_index(i as u32);
            let (transport, rx) = net.endpoint(id);
            NodeRuntime::spawn(transport, rx, RuntimeOptions::new())
        })
        .collect()
}

fn setup_service(nodes: &[NodeHandle], servers: &[NodeId], group: &GroupId) {
    for handle in &nodes[..servers.len()] {
        let group = group.clone();
        let members = servers.to_vec();
        handle.with_nso(move |nso, now, out| {
            nso.create_server_group(
                group.clone(),
                members,
                Replication::Active,
                OpenOptimisation::None,
                GroupConfig::request_reply(),
                now,
                out,
            )
            .unwrap();
            let me = nso.node().index();
            nso.register_group_servant(
                group,
                Box::new(move |op: &str, _: &[u8]| Bytes::from(format!("{op}#{me}"))),
            );
        });
    }
}

fn bind_and_invoke(
    client: &NodeHandle,
    group: &GroupId,
    servers: Vec<NodeId>,
    open: bool,
) -> usize {
    let g = group.clone();
    client.with_nso(move |nso, now, out| {
        let opts = if open {
            BindOptions::open(servers[0])
        } else {
            BindOptions::closed(servers)
        };
        nso.bind(g, opts, now, out).unwrap();
    });
    let ready = client
        .wait_for_output(Duration::from_secs(15), |o| {
            matches!(o, NsoOutput::BindingReady { .. })
        })
        .expect("binding established");
    let NsoOutput::BindingReady { group: binding } = ready else {
        unreachable!()
    };
    client.with_nso(move |nso, now, out| {
        let binding = nso.handle_for(&binding).unwrap();
        binding
            .invoke(nso, "hello", Bytes::new(), ReplyMode::All, now, out)
            .unwrap();
    });
    let done = client
        .wait_for_output(Duration::from_secs(15), |o| {
            matches!(o, NsoOutput::InvocationComplete { .. })
        })
        .expect("invocation completed");
    let NsoOutput::InvocationComplete { replies, .. } = done else {
        unreachable!()
    };
    replies.len()
}

#[test]
fn open_invocation_over_channel_transport() {
    let nodes = spawn_channel_cluster(4);
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let group = GroupId::new("threaded-svc");
    setup_service(&nodes, &servers, &group);
    assert_eq!(bind_and_invoke(&nodes[3], &group, servers, true), 3);
    for n in nodes {
        n.shutdown();
    }
}

#[test]
fn closed_invocation_over_channel_transport() {
    let nodes = spawn_channel_cluster(3);
    let servers: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    let group = GroupId::new("threaded-closed");
    setup_service(&nodes, &servers, &group);
    assert_eq!(bind_and_invoke(&nodes[2], &group, servers, false), 2);
    for n in nodes {
        n.shutdown();
    }
}

#[test]
fn request_reply_over_real_tcp_sockets() {
    // Three nodes on localhost TCP: 2 servers + 1 client.
    let ids: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let mut endpoints = Vec::new();
    let mut rxs = Vec::new();
    for &id in &ids {
        let (tx, rx) =
            newtop_flow::queue::bounded(newtop_flow::FlowConfig::default().queue_capacity);
        let ep = TcpEndpoint::bind(id, "127.0.0.1:0".parse().unwrap(), tx).unwrap();
        endpoints.push(ep);
        rxs.push(rx);
    }
    let addrs: Vec<_> = endpoints.iter().map(TcpEndpoint::local_addr).collect();
    for ep in &endpoints {
        for (&id, &addr) in ids.iter().zip(addrs.iter()) {
            ep.register_peer(id, addr);
        }
    }
    let nodes: Vec<NodeHandle> = endpoints
        .iter()
        .zip(rxs)
        .map(|(ep, rx)| NodeRuntime::spawn(ep.handle(), rx, RuntimeOptions::new()))
        .collect();

    let servers = vec![ids[0], ids[1]];
    let group = GroupId::new("tcp-svc");
    setup_service(&nodes, &servers, &group);
    assert_eq!(bind_and_invoke(&nodes[2], &group, servers, true), 2);
    for n in nodes {
        n.shutdown();
    }
    for mut ep in endpoints {
        ep.shutdown();
    }
}

#[test]
fn peer_group_over_threads() {
    let nodes = spawn_channel_cluster(3);
    let members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let group = GroupId::new("threaded-peers");
    for handle in &nodes {
        let group = group.clone();
        let members = members.clone();
        handle.with_nso(move |nso, now, out| {
            nso.create_peer_group(
                group,
                members,
                GroupConfig::peer().with_time_silence(Duration::from_millis(20)),
                now,
                out,
            )
            .unwrap();
        });
    }
    // Each member multicasts once.
    for handle in &nodes {
        let group = group.clone();
        let body = format!("from-{}", handle.node());
        handle.with_nso(move |nso, now, out| {
            let peer = nso.handle_for(&group).unwrap();
            peer.send(nso, Bytes::from(body), DeliveryOrder::Total, now, out)
                .unwrap();
        });
    }
    // Everyone delivers all three multicasts.
    for handle in &nodes {
        let mut seen = 0;
        while seen < 3 {
            let o = handle
                .wait_for_output(Duration::from_secs(15), |o| {
                    matches!(o, NsoOutput::PeerDeliver { .. })
                })
                .expect("peer delivery");
            let NsoOutput::PeerDeliver { .. } = o else {
                unreachable!()
            };
            seen += 1;
        }
    }
    for n in nodes {
        n.shutdown();
    }
}
