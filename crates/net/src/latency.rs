//! Latency models.
//!
//! A [`LatencyMatrix`] gives the one-way network latency between two
//! [`Site`]s as a base value plus uniform jitter. Two presets reproduce the
//! paper's environments:
//!
//! * [`LatencyMatrix::lan`] — every node on the Newcastle 100 Mbit LAN;
//! * [`LatencyMatrix::internet`] — Newcastle, London and Pisa connected over
//!   the Internet (nodes at the *same* WAN site still talk at LAN latency).
//!
//! The WAN constants are calibrated so that a plain synchronous ORB call
//! (request + reply, see `newtop-orb`) lands near the paper's Table 1:
//! roughly 1 ms on the LAN, and tens of milliseconds between the WAN sites,
//! with Pisa–Newcastle the slowest pair. Absolute values are not claimed —
//! the reproduction targets the *shape* of the results.

use std::collections::HashMap;
use std::time::Duration;

use rand::Rng;

use crate::site::Site;

/// A one-way latency distribution: `base + uniform(0..=jitter)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LatencySpec {
    base: Duration,
    jitter: Duration,
}

impl LatencySpec {
    /// Creates a spec with the given base latency and uniform jitter bound.
    #[must_use]
    pub const fn new(base: Duration, jitter: Duration) -> Self {
        LatencySpec { base, jitter }
    }

    /// A constant latency with no jitter.
    #[must_use]
    pub const fn constant(base: Duration) -> Self {
        LatencySpec {
            base,
            jitter: Duration::ZERO,
        }
    }

    /// The base (minimum) latency.
    #[must_use]
    pub const fn base(&self) -> Duration {
        self.base
    }

    /// The jitter bound (the maximum added on top of the base).
    #[must_use]
    pub const fn jitter(&self) -> Duration {
        self.jitter
    }

    /// Draws one latency sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        let extra = rng.gen_range(0..=self.jitter.as_nanos() as u64);
        self.base + Duration::from_nanos(extra)
    }
}

/// One-way latency between pairs of sites.
///
/// Lookups are symmetric: the latency from A to B equals the latency from
/// B to A unless both directions were set explicitly.
///
/// ```
/// use newtop_net::latency::LatencyMatrix;
/// use newtop_net::site::Site;
///
/// let m = LatencyMatrix::internet();
/// let lan = m.spec(Site::Lan, Site::Lan).base();
/// let wan = m.spec(Site::Newcastle, Site::Pisa).base();
/// assert!(wan > lan * 10);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    /// Latency between two nodes at the same site.
    local: LatencySpec,
    /// Fallback for site pairs with no explicit entry.
    default_remote: LatencySpec,
    pairs: HashMap<(Site, Site), LatencySpec>,
}

impl LatencyMatrix {
    /// One-way latency between LAN peers: 180 µs ± 60 µs. With the default
    /// per-message CPU costs this yields a plain synchronous ORB call of
    /// about 1 ms, matching the paper's Table 1 LAN row.
    const LAN_SPEC: LatencySpec =
        LatencySpec::new(Duration::from_micros(180), Duration::from_micros(60));

    /// Creates a matrix where every pair of distinct sites uses
    /// `default_remote` and co-located nodes use `local`.
    #[must_use]
    pub fn uniform(local: LatencySpec, default_remote: LatencySpec) -> Self {
        LatencyMatrix {
            local,
            default_remote,
            pairs: HashMap::new(),
        }
    }

    /// The paper's LAN environment: everything at LAN latency.
    #[must_use]
    pub fn lan() -> Self {
        LatencyMatrix::uniform(Self::LAN_SPEC, Self::LAN_SPEC)
    }

    /// The paper's Internet environment: Newcastle, London and Pisa.
    ///
    /// One-way base latencies: Newcastle–London 4.5 ms, London–Pisa 5.5 ms,
    /// Newcastle–Pisa 6.8 ms, each with ±25 % uniform jitter. Nodes at the
    /// same site communicate at LAN latency.
    #[must_use]
    pub fn internet() -> Self {
        let mut m = LatencyMatrix::uniform(
            Self::LAN_SPEC,
            LatencySpec::new(Duration::from_micros(5_500), Duration::from_micros(1_400)),
        );
        m.set_pair(
            Site::Newcastle,
            Site::London,
            LatencySpec::new(Duration::from_micros(4_500), Duration::from_micros(1_100)),
        );
        m.set_pair(
            Site::London,
            Site::Pisa,
            LatencySpec::new(Duration::from_micros(5_500), Duration::from_micros(1_400)),
        );
        m.set_pair(
            Site::Newcastle,
            Site::Pisa,
            LatencySpec::new(Duration::from_micros(6_800), Duration::from_micros(1_700)),
        );
        // The LAN site and Newcastle are the same physical place in the
        // paper's setup (the servers' LAN was in Newcastle).
        m.set_pair(Site::Lan, Site::Newcastle, Self::LAN_SPEC);
        m.set_pair(
            Site::Lan,
            Site::London,
            LatencySpec::new(Duration::from_micros(4_500), Duration::from_micros(1_100)),
        );
        m.set_pair(
            Site::Lan,
            Site::Pisa,
            LatencySpec::new(Duration::from_micros(6_800), Duration::from_micros(1_700)),
        );
        m
    }

    /// Sets the latency for a pair of sites (both directions).
    pub fn set_pair(&mut self, a: Site, b: Site, spec: LatencySpec) -> &mut Self {
        self.pairs.insert(key(a, b), spec);
        self
    }

    /// Sets the latency between co-located nodes.
    pub fn set_local(&mut self, spec: LatencySpec) -> &mut Self {
        self.local = spec;
        self
    }

    /// The latency spec for a pair of sites.
    #[must_use]
    pub fn spec(&self, a: Site, b: Site) -> LatencySpec {
        if a == b {
            return self.local;
        }
        self.pairs
            .get(&key(a, b))
            .copied()
            .unwrap_or(self.default_remote)
    }

    /// Draws one one-way latency sample between two sites.
    pub fn sample<R: Rng>(&self, a: Site, b: Site, rng: &mut R) -> Duration {
        self.spec(a, b).sample(rng)
    }
}

impl Default for LatencyMatrix {
    /// The LAN preset.
    fn default() -> Self {
        LatencyMatrix::lan()
    }
}

fn key(a: Site, b: Site) -> (Site, Site) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_spec_has_no_jitter() {
        let spec = LatencySpec::constant(Duration::from_millis(2));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(spec.sample(&mut rng), Duration::from_millis(2));
        }
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let spec = LatencySpec::new(Duration::from_millis(1), Duration::from_millis(1));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = spec.sample(&mut rng);
            assert!(s >= Duration::from_millis(1));
            assert!(s <= Duration::from_millis(2));
        }
    }

    #[test]
    fn lookup_is_symmetric() {
        let m = LatencyMatrix::internet();
        assert_eq!(
            m.spec(Site::Newcastle, Site::Pisa),
            m.spec(Site::Pisa, Site::Newcastle)
        );
    }

    #[test]
    fn internet_preset_orders_pairs_like_the_paper() {
        // Table 1's ordering: LAN < London–Newcastle < Pisa–London < Pisa–Newcastle.
        let m = LatencyMatrix::internet();
        let lan = m.spec(Site::Lan, Site::Lan).base();
        let lon_ncl = m.spec(Site::London, Site::Newcastle).base();
        let pisa_lon = m.spec(Site::Pisa, Site::London).base();
        let pisa_ncl = m.spec(Site::Pisa, Site::Newcastle).base();
        assert!(lan < lon_ncl);
        assert!(lon_ncl < pisa_lon);
        assert!(pisa_lon < pisa_ncl);
    }

    #[test]
    fn same_wan_site_is_local() {
        let m = LatencyMatrix::internet();
        assert_eq!(m.spec(Site::Pisa, Site::Pisa), m.spec(Site::Lan, Site::Lan));
    }

    #[test]
    fn unknown_pair_falls_back_to_default() {
        let m = LatencyMatrix::internet();
        let spec = m.spec(Site::Custom(1), Site::Custom(2));
        assert_eq!(spec, m.spec(Site::Custom(3), Site::Custom(4)));
    }
}
