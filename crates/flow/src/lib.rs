//! Credit-based flow control and bounded backpressure queues for NewTop.
//!
//! The paper's protocol engine (Morgan & Shrivastava, DSN 2000) assumes
//! buffers never fill; this crate supplies the missing overload layer in
//! two parts:
//!
//! * [`FlowController`] — a per-group, per-view *send window*. A sender
//!   may have at most `window` multicasts outstanding (sent but not yet
//!   acknowledged by every current member). Credits replenish from the
//!   contiguous-acknowledgement vectors the GCS already piggybacks on
//!   data and null messages, so the paper's time-silence mechanism
//!   carries flow control for free. When the window is exhausted the
//!   send is *shed* with a typed outcome instead of buffering without
//!   bound.
//! * [`queue`] — a bounded MPMC channel with an overload-shedding
//!   `try_send`, a backpressuring blocking `send`, and shed/peak-depth
//!   statistics. It replaces the unbounded channels previously used by
//!   the in-process network, the TCP endpoint and the threaded runtime.
//!
//! The crate is dependency-free (std only) and generic over the member
//! identifier so every layer of the stack can use it without cycles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;

use std::collections::BTreeMap;

/// Sizing knobs for the flow-control subsystem.
///
/// One config flows outward from the application: the GCS takes
/// `send_window` and `max_queued_multicasts`, transports and runtimes
/// take `queue_capacity`, and the invocation layer takes
/// `max_pending_calls`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlowConfig {
    /// Maximum multicasts a member may have outstanding (sent in the
    /// current view but not yet acknowledged by every other member)
    /// before further sends are shed.
    pub send_window: u64,
    /// Capacity of each bounded transport/runtime queue.
    pub queue_capacity: usize,
    /// Maximum in-flight invocations a client, caller group or server
    /// backlog will hold before shedding new calls.
    pub max_pending_calls: usize,
    /// Maximum multicasts buffered while a view change is in progress
    /// (the GCS queues own sends until the new view installs).
    pub max_queued_multicasts: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            send_window: 64,
            queue_capacity: 1024,
            max_pending_calls: 256,
            max_queued_multicasts: 128,
        }
    }
}

impl FlowConfig {
    /// Replaces the send window.
    #[must_use]
    pub fn with_send_window(mut self, window: u64) -> Self {
        self.send_window = window;
        self
    }

    /// Replaces the transport/runtime queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Replaces the pending-call admission limit.
    #[must_use]
    pub fn with_max_pending_calls(mut self, max: usize) -> Self {
        self.max_pending_calls = max;
        self
    }

    /// Replaces the view-change multicast buffer limit.
    #[must_use]
    pub fn with_max_queued_multicasts(mut self, max: usize) -> Self {
        self.max_queued_multicasts = max;
        self
    }
}

/// The outcome of asking the flow controller for a send credit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A credit was granted; the caller may send.
    Granted,
    /// The send window is full; the send was shed (counted in
    /// [`FlowController::shed_count`]).
    Shed,
}

impl Admission {
    /// True if the credit was granted.
    #[must_use]
    pub fn is_granted(self) -> bool {
        matches!(self, Admission::Granted)
    }
}

/// Credit-based sender-side flow control for one group.
///
/// Tracks, per view, how many multicasts this member has sent and the
/// contiguous prefix each *other* member has acknowledged. The number in
/// flight is `sent − min(acked)`; a send credit is granted only while
/// that stays below the window. Acknowledgements arrive for free on the
/// GCS's piggybacked contiguous-ack vectors, and a view change resets
/// the ledger (the new view renumbers from sequence 1, and virtual
/// synchrony settles the old view's messages).
///
/// Generic over the member identifier `M` so the crate stays
/// dependency-free; the GCS instantiates it with its node id type.
#[derive(Clone, Debug)]
pub struct FlowController<M: Ord + Copy> {
    window: u64,
    views_installed: u64,
    sent: u64,
    acked: BTreeMap<M, u64>,
    shed: u64,
    peak_in_flight: u64,
    replayed: u64,
}

impl<M: Ord + Copy> FlowController<M> {
    /// Creates a controller with the given window and no peers (every
    /// credit granted until the first view installs).
    #[must_use]
    pub fn new(window: u64) -> Self {
        FlowController {
            window: window.max(1),
            views_installed: 0,
            sent: 0,
            acked: BTreeMap::new(),
            shed: 0,
            peak_in_flight: 0,
            replayed: 0,
        }
    }

    /// Installs a new view: the send/ack ledger resets (the GCS
    /// renumbers from sequence 1 per view) and credits are granted
    /// against the new membership. `peers` must be the view's members
    /// *excluding* this sender; duplicates are ignored.
    pub fn install_view<I: IntoIterator<Item = M>>(&mut self, peers: I) {
        self.views_installed += 1;
        self.sent = 0;
        self.acked = peers.into_iter().map(|p| (p, 0)).collect();
    }

    /// Requests a send credit. On [`Admission::Granted`] the caller must
    /// send exactly one multicast (the controller counts it as in
    /// flight); on [`Admission::Shed`] the caller must drop the send and
    /// report the overload upward.
    pub fn try_acquire(&mut self) -> Admission {
        if self.in_flight() >= self.window {
            self.shed += 1;
            return Admission::Shed;
        }
        self.sent += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight());
        Admission::Granted
    }

    /// Admits one *replay* send — state-transfer or log-replay traffic
    /// that re-ships history the group already acknowledged. Replays are
    /// always granted and never counted as in flight: the window bounds
    /// *new* multicasts awaiting acknowledgement, and charging recovery
    /// traffic against it would let a large delta starve live sends (or
    /// a full window stall a rejoin indefinitely). Replays are counted
    /// separately in [`FlowController::replayed_count`] so observability
    /// still sees the volume.
    pub fn admit_replay(&mut self) -> Admission {
        self.replayed += 1;
        Admission::Granted
    }

    /// Replay sends admitted outside the window (across all views).
    #[must_use]
    pub fn replayed_count(&self) -> u64 {
        self.replayed
    }

    /// Records that `peer` has contiguously acknowledged this sender's
    /// messages up to sequence `upto` (in the current view). Higher
    /// water marks replenish credits; stale or unknown-peer values are
    /// ignored, and the mark is clamped to what was actually sent.
    pub fn on_ack(&mut self, peer: M, upto: u64) {
        let sent = self.sent;
        if let Some(mark) = self.acked.get_mut(&peer) {
            *mark = (*mark).max(upto.min(sent));
        }
    }

    /// Multicasts sent in this view that some member has not yet
    /// acknowledged. Zero when the group has no other members (a
    /// singleton delivers to itself immediately).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        let floor = self.acked.values().copied().min().unwrap_or(self.sent);
        self.sent.saturating_sub(floor)
    }

    /// Send credits currently available.
    #[must_use]
    pub fn credits(&self) -> u64 {
        self.window.saturating_sub(self.in_flight())
    }

    /// The configured window.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Sends shed because the window was exhausted (across all views).
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Records externally shed work (e.g. a view-change buffer overflow)
    /// in this controller's shed counter so one counter covers the
    /// group.
    pub fn note_shed(&mut self) {
        self.shed += 1;
    }

    /// Highest in-flight count observed after any granted send.
    #[must_use]
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Number of views installed into this controller.
    #[must_use]
    pub fn views_installed(&self) -> u64 {
        self.views_installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_grants_then_sheds() {
        let mut fc: FlowController<u32> = FlowController::new(3);
        fc.install_view([1, 2]);
        for _ in 0..3 {
            assert_eq!(fc.try_acquire(), Admission::Granted);
        }
        assert_eq!(fc.in_flight(), 3);
        assert_eq!(fc.credits(), 0);
        assert_eq!(fc.try_acquire(), Admission::Shed);
        assert_eq!(fc.shed_count(), 1);
        assert_eq!(fc.peak_in_flight(), 3);
    }

    #[test]
    fn replay_admission_bypasses_a_full_window() {
        let mut fc: FlowController<u32> = FlowController::new(2);
        fc.install_view([1, 2]);
        assert!(fc.try_acquire().is_granted());
        assert!(fc.try_acquire().is_granted());
        assert_eq!(fc.try_acquire(), Admission::Shed);
        // Recovery traffic is still admitted, and admitting it neither
        // consumes live credits nor inflates the in-flight count.
        assert!(fc.admit_replay().is_granted());
        assert_eq!(fc.replayed_count(), 1);
        assert_eq!(fc.in_flight(), 2);
        assert_eq!(fc.credits(), 0);
        // Live sends remain shed until a real ack replenishes.
        assert_eq!(fc.try_acquire(), Admission::Shed);
        fc.on_ack(1, 2);
        fc.on_ack(2, 2);
        assert!(fc.try_acquire().is_granted());
    }

    #[test]
    fn acks_replenish_credits_at_the_slowest_member() {
        let mut fc: FlowController<u32> = FlowController::new(2);
        fc.install_view([1, 2]);
        assert!(fc.try_acquire().is_granted());
        assert!(fc.try_acquire().is_granted());
        assert_eq!(fc.try_acquire(), Admission::Shed);

        // One fast member acking does not help: the window is governed
        // by the slowest member's contiguous prefix.
        fc.on_ack(1, 2);
        assert_eq!(fc.in_flight(), 2);
        assert_eq!(fc.try_acquire(), Admission::Shed);

        // Once the slow member catches up, credits return.
        fc.on_ack(2, 1);
        assert_eq!(fc.in_flight(), 1);
        assert!(fc.try_acquire().is_granted());
    }

    #[test]
    fn ack_is_clamped_and_unknown_peers_ignored() {
        let mut fc: FlowController<u32> = FlowController::new(4);
        fc.install_view([1]);
        assert!(fc.try_acquire().is_granted());
        // An ack beyond what was sent clamps to `sent`.
        fc.on_ack(1, 99);
        assert_eq!(fc.in_flight(), 0);
        // A non-member's ack changes nothing.
        assert!(fc.try_acquire().is_granted());
        fc.on_ack(7, 99);
        assert_eq!(fc.in_flight(), 1);
    }

    #[test]
    fn view_change_resets_the_ledger() {
        let mut fc: FlowController<u32> = FlowController::new(2);
        fc.install_view([1, 2]);
        assert!(fc.try_acquire().is_granted());
        assert!(fc.try_acquire().is_granted());
        assert_eq!(fc.try_acquire(), Admission::Shed);

        // The view changes (member 2 crashed): old in-flight messages
        // are settled by virtual synchrony, the ledger restarts, and a
        // full window of credits is available against the new view.
        fc.install_view([1]);
        assert_eq!(fc.in_flight(), 0);
        assert_eq!(fc.views_installed(), 2);
        assert!(fc.try_acquire().is_granted());
        assert!(fc.try_acquire().is_granted());
        assert_eq!(fc.try_acquire(), Admission::Shed);
        // Shed counts accumulate across views.
        assert_eq!(fc.shed_count(), 2);

        // Acks in the new view count from 1 again.
        fc.on_ack(1, 2);
        assert_eq!(fc.in_flight(), 0);
    }

    #[test]
    fn singleton_views_never_shed() {
        let mut fc: FlowController<u32> = FlowController::new(1);
        fc.install_view(std::iter::empty());
        for _ in 0..100 {
            assert!(fc.try_acquire().is_granted());
        }
        assert_eq!(fc.in_flight(), 0);
        assert_eq!(fc.shed_count(), 0);
    }
}
