//! Sharded group-communication state: independent groups on parallel
//! per-shard engines.
//!
//! A [`ShardedGcs`] partitions one node's groups across `N` shard
//! engines, each a complete [`GcsMember`] owning its own Lamport clock
//! domain, delivery engines, flow ledgers, timer-tag range, and
//! observability registry. Work for a group only ever touches the shard
//! that owns it (FlexCast's genuineness principle applied locally).
//!
//! **Placement rule.** A group hashes (FNV-1a over its id) to one of the
//! `N` shards — *unless* it overlaps an already-placed group. Two groups
//! overlap when their member sets share a node other than the local one;
//! such groups are pinned to the earlier group's shard so the shared
//! Lamport clock keeps cross-group total order causality-consistent for
//! every third party that can observe both groups (the paper's
//! overlapping-groups guarantee, §3). Overlap through the local node
//! alone does not pin: no remote observer can compare the two groups'
//! orders, so they may shard freely — this is exactly what lets a client
//! node bound to many disjoint services spread them across shards.
//! Overlap detection runs at placement (bind/create/join) time;
//! cross-shard causal barriers for groups that begin overlapping later
//! through view changes are an explicit non-goal of this layer.
//!
//! With `N = 1` the behaviour is bit-identical to a single [`GcsMember`].

use bytes::Bytes;

use newtop_net::metrics::Observability;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;

use newtop_flow::FlowController;

use crate::group::{DeliveryOrder, GroupConfig, GroupId};
use crate::member::{GcsError, GcsMember, GcsNet, GcsOutput};
use crate::messages::GcsMessage;
use crate::view::View;

use std::collections::BTreeMap;

/// Timer-tag span reserved for each shard within the owner's GCS tag
/// range: shard `k` allocates tags in `tag_base + k * SHARD_TAG_SPAN ..`.
pub const SHARD_TAG_SPAN: u64 = 1 << 32;

/// Most shards a node may run (keeps every shard's tag range inside the
/// owner's component tag space).
pub const MAX_SHARDS: usize = 256;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One node's sharded group-communication service. See the
/// [module docs](self) for the placement and pinning rules.
pub struct ShardedGcs {
    node: NodeId,
    shards: Vec<GcsMember>,
    /// Which shard owns each group this node participates in.
    placement: BTreeMap<GroupId, usize>,
    /// Member sets recorded at placement time, for overlap pinning.
    /// Views evolve afterwards; this layer only promises bind-time
    /// co-location (see the module docs).
    placed_members: BTreeMap<GroupId, Vec<NodeId>>,
}

impl std::fmt::Debug for ShardedGcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGcs")
            .field("node", &self.node)
            .field("shards", &self.shards.len())
            .field("placement", &self.placement)
            .finish()
    }
}

impl ShardedGcs {
    /// Creates `shards` engines for `node` (clamped to `1..=MAX_SHARDS`),
    /// shard `k` allocating timer tags from
    /// `tag_base + k * SHARD_TAG_SPAN`.
    #[must_use]
    pub fn new(node: NodeId, tag_base: u64, shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        let engines = (0..shards)
            .map(|k| GcsMember::new(node, tag_base + (k as u64) * SHARD_TAG_SPAN))
            .collect();
        ShardedGcs {
            node,
            shards: engines,
            placement: BTreeMap::new(),
            placed_members: BTreeMap::new(),
        }
    }

    /// The local node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of shard engines.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a placed group runs on.
    #[must_use]
    pub fn shard_of(&self, group: &GroupId) -> Option<usize> {
        self.placement.get(group).copied()
    }

    /// Decides the shard for a new group: pinned to the first placed
    /// group sharing a non-local member, else FNV-1a of the id.
    fn place(&mut self, group: &GroupId, members: &[NodeId]) -> usize {
        let me = self.node;
        let overlap = self.placed_members.iter().find_map(|(g, placed)| {
            let shared = placed.iter().any(|m| *m != me && members.contains(m));
            if shared {
                self.placement.get(g).copied()
            } else {
                None
            }
        });
        let shard = overlap.unwrap_or_else(|| {
            (fnv1a(group.as_str().as_bytes()) as usize)
                .checked_rem(self.shards.len())
                .unwrap_or(0)
        });
        self.placement.insert(group.clone(), shard);
        self.placed_members.insert(group.clone(), members.to_vec());
        shard
    }

    fn unplace(&mut self, group: &GroupId) {
        self.placement.remove(group);
        self.placed_members.remove(group);
    }

    // --- group API (mirrors `GcsMember`, routed per shard) --------------

    /// Creates a statically-bootstrapped group on the shard the placement
    /// rule selects. See [`GcsMember::create_group`].
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from the owning shard.
    pub fn create_group(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        members: Vec<NodeId>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<Vec<GcsOutput>, GcsError> {
        if self.placement.contains_key(&group) {
            return Err(GcsError::AlreadyMember(group));
        }
        let shard = self.place(&group, &members);
        let r = match self.shards.get_mut(shard) {
            Some(s) => s.create_group(group.clone(), config, members, now, net),
            None => Err(GcsError::UnknownGroup(group.clone())),
        };
        if r.is_err() {
            self.unplace(&group);
        }
        r
    }

    /// Starts joining an existing group through `contact`. Placement uses
    /// the only membership known at join time, `{self, contact}`; if the
    /// group overlaps others beyond that, co-location is not guaranteed
    /// (see the module docs). See [`GcsMember::join_group`].
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from the owning shard.
    pub fn join_group(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        contact: NodeId,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<(), GcsError> {
        if self.placement.contains_key(&group) {
            return Err(GcsError::AlreadyMember(group));
        }
        let shard = self.place(&group, &[self.node, contact]);
        let r = self.shards[shard].join_group(group.clone(), config, contact, now, net);
        if r.is_err() {
            self.unplace(&group);
        }
        r
    }

    /// Like [`ShardedGcs::join_group`], but places the group using a
    /// full membership the caller already knows — a recovering node
    /// rejoins with the member set of its last durably installed view,
    /// so overlapping groups land on the same shard (and clock domain)
    /// they occupied before the crash, keeping sharded replays
    /// byte-identical to single-shard ones.
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from the owning shard.
    pub fn join_group_with_membership(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        contact: NodeId,
        known_members: &[NodeId],
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<(), GcsError> {
        if self.placement.contains_key(&group) {
            return Err(GcsError::AlreadyMember(group));
        }
        let shard = self.place(&group, known_members);
        let r = self.shards[shard].join_group(group.clone(), config, contact, now, net);
        if r.is_err() {
            self.unplace(&group);
        }
        r
    }

    /// Gracefully leaves a group. See [`GcsMember::leave_group`].
    ///
    /// # Errors
    ///
    /// [`GcsError::UnknownGroup`] if the node is not in the group.
    pub fn leave_group(
        &mut self,
        group: &GroupId,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<Vec<GcsOutput>, GcsError> {
        let shard = self
            .shard_of(group)
            .ok_or_else(|| GcsError::UnknownGroup(group.clone()))?;
        let r = self
            .shards
            .get_mut(shard)
            .ok_or_else(|| GcsError::UnknownGroup(group.clone()))?
            .leave_group(group, now, net);
        if r.is_ok() {
            self.unplace(group);
        }
        r
    }

    /// Multicasts `payload` in a group. See [`GcsMember::multicast`].
    ///
    /// # Errors
    ///
    /// [`GcsError::UnknownGroup`] / [`GcsError::NotMember`] /
    /// [`GcsError::Overloaded`] from the owning shard.
    pub fn multicast(
        &mut self,
        group: &GroupId,
        order: DeliveryOrder,
        payload: Bytes,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<(), GcsError> {
        let shard = self
            .shard_of(group)
            .and_then(|i| self.shards.get_mut(i))
            .ok_or_else(|| GcsError::UnknownGroup(group.clone()))?;
        shard.multicast(group, order, payload, now, net)
    }

    /// Routes a received message to the shard owning its group. A
    /// [`GcsMessage::Batch`] envelope is unpacked here and each
    /// constituent routed independently — constituents may span groups
    /// and therefore shards.
    pub fn on_message(
        &mut self,
        msg: GcsMessage,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Vec<GcsOutput> {
        match msg {
            GcsMessage::Batch(msgs) => {
                let mut outputs = Vec::new();
                for m in msgs {
                    // Decode rejects nesting; skip rather than recurse if
                    // a hand-built nested batch ever appears.
                    if !matches!(m, GcsMessage::Batch(_)) {
                        outputs.extend(self.on_message(m, now, net));
                    }
                }
                outputs
            }
            m => {
                let Some(shard) = m
                    .group()
                    .and_then(|g| self.shard_of(g))
                    .and_then(|i| self.shards.get_mut(i))
                else {
                    return Vec::new();
                };
                shard.on_message(m, now, net)
            }
        }
    }

    /// Routes a fired timer to the shard owning its tag.
    pub fn on_timer(&mut self, tag: u64, now: SimTime, net: &mut GcsNet<'_>) -> Vec<GcsOutput> {
        match self.shards.iter_mut().find(|s| s.owns_tag(tag)) {
            Some(shard) => shard.on_timer(tag, now, net),
            None => Vec::new(),
        }
    }

    /// Whether any shard owns this timer tag.
    #[must_use]
    pub fn owns_tag(&self, tag: u64) -> bool {
        self.shards.iter().any(|s| s.owns_tag(tag))
    }

    // --- queries ---------------------------------------------------------

    /// The current view of a group this node belongs to.
    #[must_use]
    pub fn view_of(&self, group: &GroupId) -> Option<&View> {
        self.shard_of(group)
            .and_then(|s| self.shards[s].view_of(group))
    }

    /// Whether the node is a full member of the group.
    #[must_use]
    pub fn is_member_of(&self, group: &GroupId) -> bool {
        self.shard_of(group)
            .is_some_and(|s| self.shards[s].is_member_of(group))
    }

    /// The groups this node currently participates in, across all shards.
    pub fn group_ids(&self) -> impl Iterator<Item = &GroupId> {
        self.placement.keys()
    }

    /// The flow-control ledger of a group this node belongs to.
    #[must_use]
    pub fn flow_of(&self, group: &GroupId) -> Option<&FlowController<NodeId>> {
        self.shard_of(group)
            .and_then(|s| self.shards[s].flow_of(group))
    }

    /// Mutable flow-control access (recovery replay admission).
    pub fn flow_of_mut(&mut self, group: &GroupId) -> Option<&mut FlowController<NodeId>> {
        let s = self.shard_of(group)?;
        self.shards[s].flow_of_mut(group)
    }

    /// Internal-state summary for one group, prefixed with its shard.
    #[doc(hidden)]
    #[must_use]
    pub fn diagnostics(&self, group: &GroupId) -> String {
        match self.shard_of(group) {
            Some(s) => format!(
                "shard={s}/{} {}",
                self.shards.len(),
                self.shards[s].diagnostics(group)
            ),
            None => "no such group".to_owned(),
        }
    }

    /// Per-shard observability registries (metrics and traces); the owner
    /// merges them into its own view.
    pub fn observabilities(&self) -> impl Iterator<Item = &Observability> {
        self.shards.iter().map(GcsMember::observability)
    }

    /// The Lamport clock value of the shard owning `group` (each shard is
    /// its own clock domain).
    #[must_use]
    pub fn clock_value_of(&self, group: &GroupId) -> Option<u64> {
        self.shard_of(group).map(|s| self.shards[s].clock_value())
    }

    /// Advances every shard's clock past an externally observed
    /// timestamp (see [`GcsMember::observe_clock`]); recovery replay
    /// does not know which shard will own a group it is yet to rejoin,
    /// and over-advancing a clock is always safe.
    pub fn observe_clock(&mut self, ts: u64) {
        for shard in &mut self.shards {
            shard.observe_clock(ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupConfig;
    use newtop_net::sim::Outbox;
    use newtop_orb::orb::OrbCore;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn harness(node: NodeId) -> (OrbCore, Outbox) {
        (OrbCore::new(node), Outbox::detached(0))
    }

    #[test]
    fn disjoint_groups_spread_and_overlapping_groups_pin() {
        let me = n(0);
        let mut gcs = ShardedGcs::new(me, 0, 4);
        let (mut orb, mut out) = harness(me);
        let mut net = GcsNet::new(&mut orb, &mut out);
        // Many disjoint groups (only the local node shared) must not all
        // land on one shard.
        let mut used = std::collections::BTreeSet::new();
        for i in 0..8 {
            let g = GroupId::new(format!("svc-{i}"));
            gcs.create_group(
                g.clone(),
                GroupConfig::default(),
                vec![me, n(10 + 3 * i), n(11 + 3 * i)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
            used.insert(gcs.shard_of(&g).unwrap());
        }
        assert!(used.len() > 1, "disjoint groups stayed on one shard");
        // A group overlapping svc-0 beyond the local node pins to its
        // shard.
        let overlapping = GroupId::new("overlap");
        gcs.create_group(
            overlapping.clone(),
            GroupConfig::default(),
            vec![me, n(10), n(99)],
            SimTime::ZERO,
            &mut net,
        )
        .unwrap();
        assert_eq!(
            gcs.shard_of(&overlapping),
            gcs.shard_of(&GroupId::new("svc-0")),
            "overlapping groups must co-locate"
        );
    }

    #[test]
    fn placement_is_freed_on_leave_and_errors_do_not_leak() {
        let me = n(0);
        let mut gcs = ShardedGcs::new(me, 0, 2);
        let (mut orb, mut out) = harness(me);
        let mut net = GcsNet::new(&mut orb, &mut out);
        let g = GroupId::new("g");
        // Bad membership (no local node) must not leave a placement.
        assert!(gcs
            .create_group(
                g.clone(),
                GroupConfig::default(),
                vec![n(5)],
                SimTime::ZERO,
                &mut net
            )
            .is_err());
        assert_eq!(gcs.shard_of(&g), None);
        gcs.create_group(
            g.clone(),
            GroupConfig::default(),
            vec![me, n(5)],
            SimTime::ZERO,
            &mut net,
        )
        .unwrap();
        assert!(gcs.shard_of(&g).is_some());
        gcs.leave_group(&g, SimTime::ZERO, &mut net).unwrap();
        assert_eq!(gcs.shard_of(&g), None);
    }

    #[test]
    fn timer_tags_do_not_collide_across_shards() {
        let me = n(0);
        let mut gcs = ShardedGcs::new(me, 1 << 40, 4);
        let (mut orb, mut out) = harness(me);
        let mut net = GcsNet::new(&mut orb, &mut out);
        for i in 0..4 {
            gcs.create_group(
                GroupId::new(format!("t-{i}")),
                GroupConfig::default(),
                vec![me, n(10 + 2 * i), n(11 + 2 * i)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        }
        // Every timer set by any shard must be owned, and by exactly one
        // shard (disjoint per-shard tag ranges).
        let parts = out.into_parts();
        assert!(!parts.timer_sets.is_empty());
        for (_, _, tag) in parts.timer_sets {
            assert!(gcs.owns_tag(tag));
        }
    }
}
