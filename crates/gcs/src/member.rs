//! The per-node group-communication state machine.
//!
//! A [`GcsMember`] is the group-communication half of a NewTop service
//! object: it manages every group its node belongs to (overlapping groups
//! share one Lamport clock, keeping cross-group total order
//! causality-consistent), drives the per-view [`DeliveryEngine`]s, and
//! implements the parts of the protocol that need a network and timers:
//!
//! * multicast (one oneway ORB invocation per member, including a
//!   loopback to self — the paper's per-member invocation fan-out);
//! * NACK-based retransmission and sequencer order-log repair;
//! * the time-silence mechanism (null messages), in *lively* or
//!   *event-driven* mode;
//! * the failure suspector;
//! * view agreement: coordinator-led propose → state-response →
//!   flush/install, giving virtually-synchronous view changes; the
//!   protocol is partitionable (disjoint partitions install disjoint
//!   views) and tolerates coordinator failure by re-election
//!   (lowest-ranked candidate) with monotonic attempt numbers;
//! * dynamic join and graceful leave.
//!
//! All methods are sans-IO: network sends go through a [`GcsNet`]
//! (an ORB plus an outbox) and time is a parameter.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use newtop_net::metrics::Observability;
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_net::trace::TraceEvent;
use newtop_orb::cdr::CdrEncode;
use newtop_orb::ior::{ObjectKey, ObjectRef};
use newtop_orb::orb::OrbCore;

use newtop_flow::FlowController;

use crate::clock::{DepsVector, LamportClock};
use crate::engine::{DeliveryEngine, EngineConfig};
use crate::group::{DeliveryOrder, GroupConfig, GroupId, Liveness, OrderProtocol};
use crate::messages::{ContigVector, DataMsg, GcsMessage, NullMsg};
use crate::view::{View, ViewId};
use crate::{GCS_OPERATION, NSO_OBJECT_KEY};

/// Maximum retransmissions served per NACK.
const MAX_RETRANS_PER_NACK: u64 = 64;
/// Maximum order-log entries served per order NACK.
const MAX_ORDER_ENTRIES_PER_NACK: usize = 256;
/// Activity linger: an event-driven group keeps its liveness machinery
/// running for this many time-silence periods after the last activity.
const EVENT_DRIVEN_LINGER: u32 = 3;
/// How many times a view-change round is re-sent on timeout before the
/// silent party is written off (agreement traffic is not NACK-protected,
/// so a lost message must not immediately look like a crash).
const VC_RETRIES: u32 = 2;
/// Minimum spacing between a sequencer's ordering multicasts. When
/// records become due faster than this, they are batched into one
/// `SeqOrder` — at light load every record still goes out immediately.
const ORDER_FLUSH_INTERVAL: std::time::Duration = std::time::Duration::from_micros(500);

/// Errors returned by the group API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcsError {
    /// The node is not in the named group.
    UnknownGroup(GroupId),
    /// The node already belongs to the named group.
    AlreadyMember(GroupId),
    /// The operation needs full membership but the node is still joining.
    NotMember(GroupId),
    /// `create_group` was called with a member list not containing the
    /// local node, or an empty list.
    BadMembership,
    /// The group's credit-based send window (or its view-change send
    /// buffer) is exhausted: the multicast was shed. Retry after
    /// acknowledgements from the slowest member replenish credits.
    Overloaded(GroupId),
}

impl fmt::Display for GcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcsError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            GcsError::AlreadyMember(g) => write!(f, "already a member of {g}"),
            GcsError::NotMember(g) => write!(f, "not a full member of {g}"),
            GcsError::BadMembership => {
                f.write_str("initial membership must include the local node")
            }
            GcsError::Overloaded(g) => {
                write!(f, "send window of {g} exhausted; multicast shed")
            }
        }
    }
}

impl Error for GcsError {}

/// Things the GCS hands up to the invocation layer / application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcsOutput {
    /// A multicast became deliverable.
    Delivered {
        /// Group it was sent in.
        group: GroupId,
        /// The multicasting member (may be the local node itself).
        sender: NodeId,
        /// The guarantee it was sent with.
        order: DeliveryOrder,
        /// The message's Lamport timestamp (diagnostic; symmetric total
        /// order delivers in `(lamport, sender)` order).
        lamport: u64,
        /// Application payload.
        payload: Bytes,
    },
    /// A new view was installed.
    ViewInstalled {
        /// Group concerned.
        group: GroupId,
        /// The new view.
        view: View,
        /// Members present now but not before.
        joined: Vec<NodeId>,
        /// Members present before but not now.
        departed: Vec<NodeId>,
    },
    /// The local node has left the group (after
    /// [`GcsMember::leave_group`]).
    LeftGroup {
        /// Group concerned.
        group: GroupId,
    },
}

/// Staged sends awaiting a batch flush. The buffer is owned by the stack
/// host (the NSO), not by the per-call [`GcsNet`], so one flush window
/// can span several handler events: every message staged between two
/// flushes shares a frame per destination, Nagle-style. The host arms a
/// micro flush timer whenever the buffer is non-empty.
#[derive(Debug, Default)]
pub struct SendBuffer {
    /// Staged messages, in send order.
    staged: Vec<GcsMessage>,
    /// Per destination: indices into `staged` awaiting the flush.
    staged_for: BTreeMap<NodeId, Vec<u32>>,
    /// A flush timer is outstanding. The host sets this when it arms the
    /// timer and clears it when the timer fires, keeping exactly one
    /// timer in flight while anything is staged.
    pub scheduled: bool,
}

impl SendBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when messages are staged and not yet flushed.
    #[must_use]
    pub fn has_staged(&self) -> bool {
        !self.staged_for.is_empty()
    }
}

/// Where a [`GcsNet`] stages batchable sends: its own window-local
/// buffer (unit tests, non-batching contexts) or the host's persistent
/// one (cross-event coalescing).
enum Staging<'a> {
    Inline(SendBuffer),
    Host(&'a mut SendBuffer),
}

impl Staging<'_> {
    fn get(&mut self) -> &mut SendBuffer {
        match self {
            Staging::Inline(b) => b,
            Staging::Host(b) => b,
        }
    }
}

/// The network context for one call: the node's ORB plus the outbox the
/// runtime will apply.
pub struct GcsNet<'a> {
    /// The node's ORB core.
    pub orb: &'a mut OrbCore,
    /// The action sink.
    pub out: &'a mut Outbox,
    sent: u64,
    encode_calls: u64,
    bytes_encoded: u64,
    /// Send-path batching: when set, point-to-point sends and
    /// asynchronous fan-outs are staged and packed per destination into
    /// [`GcsMessage::Batch`] frames by [`Self::flush`].
    batching: bool,
    staging: Staging<'a>,
    batch_frames: u64,
    batch_msgs: u64,
}

impl<'a> GcsNet<'a> {
    /// Creates a context with batching off: every send goes out as its
    /// own frame immediately.
    pub fn new(orb: &'a mut OrbCore, out: &'a mut Outbox) -> Self {
        Self::with_batching(orb, out, false)
    }

    /// Creates a context with a window-local staging buffer, optionally
    /// staging sends for a per-destination batch flush. A batching
    /// context MUST have [`Self::flush`] called before it is dropped, or
    /// the staged messages never leave the node.
    pub fn with_batching(orb: &'a mut OrbCore, out: &'a mut Outbox, batching: bool) -> Self {
        GcsNet {
            orb,
            out,
            sent: 0,
            encode_calls: 0,
            bytes_encoded: 0,
            batching,
            staging: Staging::Inline(SendBuffer::new()),
            batch_frames: 0,
            batch_msgs: 0,
        }
    }

    /// Creates a context staging into the host's persistent `buf`, so
    /// messages from several handler events coalesce until the host's
    /// flush timer fires. The host is responsible for eventually calling
    /// [`Self::flush`] on a context over the same buffer.
    pub fn with_buffer(
        orb: &'a mut OrbCore,
        out: &'a mut Outbox,
        batching: bool,
        buf: &'a mut SendBuffer,
    ) -> Self {
        GcsNet {
            orb,
            out,
            sent: 0,
            encode_calls: 0,
            bytes_encoded: 0,
            batching,
            staging: Staging::Host(buf),
            batch_frames: 0,
            batch_msgs: 0,
        }
    }

    /// Point-to-point GCS messages sent through this context (multicast
    /// fan-outs count one per member). The owner harvests this into its
    /// metric registry after each batch of calls.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// CDR body encodes performed through this context. A multicast
    /// fan-out counts exactly one, whatever the group size — the
    /// encode-once invariant the metrics registry asserts.
    #[must_use]
    pub fn encode_calls(&self) -> u64 {
        self.encode_calls
    }

    /// Total CDR body bytes produced by [`Self::encode_calls`].
    #[must_use]
    pub fn bytes_encoded(&self) -> u64 {
        self.bytes_encoded
    }

    /// Marshals `msg` once through the ORB's capacity-retaining scratch
    /// encoder, producing one refcounted body frame.
    fn encode_body(&mut self, msg: &GcsMessage) -> Bytes {
        let enc = self.orb.scratch_encoder();
        enc.clear();
        msg.encode(enc);
        let body = enc.take_frame();
        self.encode_calls += 1;
        self.bytes_encoded += body.len() as u64;
        body
    }

    fn send(&mut self, to: NodeId, msg: &GcsMessage) {
        self.sent += 1;
        if self.batching {
            self.stage(to, msg);
            return;
        }
        let body = self.encode_body(msg);
        self.orb.oneway(
            &ObjectRef::new(to, NSO_OBJECT_KEY),
            GCS_OPERATION,
            body,
            self.out,
        );
    }

    /// Stages `msg` for `to`, sharing one staged copy when the same
    /// message fans out to several destinations in this flush window.
    fn stage(&mut self, to: NodeId, msg: &GcsMessage) {
        let buf = self.staging.get();
        let idx = match buf.staged.last() {
            Some(last) if last == msg => buf.staged.len() - 1,
            _ => {
                buf.staged.push(msg.clone());
                buf.staged.len() - 1
            }
        };
        #[allow(clippy::cast_possible_truncation)]
        buf.staged_for.entry(to).or_default().push(idx as u32);
    }

    /// Flushes staged sends: destinations whose staged message lists are
    /// identical share one frame (encoded once, refcount-cloned per
    /// recipient, like the fan-out path); a destination with a single
    /// staged message gets the plain frame, byte-identical to an
    /// unbatched send; multiple messages are wrapped in one
    /// [`GcsMessage::Batch`] envelope.
    pub fn flush(&mut self) {
        let buf = self.staging.get();
        if buf.staged_for.is_empty() {
            buf.staged.clear();
            return;
        }
        let staged = std::mem::take(&mut buf.staged);
        let staged_for = std::mem::take(&mut buf.staged_for);
        // Deterministic: BTreeMap iteration groups destinations by list
        // in list order; ties inside a group keep NodeId order.
        let mut by_list: BTreeMap<Vec<u32>, Vec<NodeId>> = BTreeMap::new();
        for (to, list) in staged_for {
            by_list.entry(list).or_default().push(to);
        }
        for (list, dests) in by_list {
            let frame = if let [only] = list.as_slice() {
                match staged.get(*only as usize) {
                    Some(m) => self.encode_body(m),
                    None => continue,
                }
            } else {
                let msgs: Vec<GcsMessage> = list
                    .iter()
                    .filter_map(|&i| staged.get(i as usize).cloned())
                    .collect();
                self.batch_msgs += msgs.len() as u64;
                self.batch_frames += 1;
                self.encode_body(&GcsMessage::Batch(msgs))
            };
            self.orb.oneway_fanout(
                dests,
                &ObjectKey::new(NSO_OBJECT_KEY),
                GCS_OPERATION,
                &frame,
                self.out,
            );
        }
    }

    /// Batch frames emitted by [`Self::flush`] (multi-message only).
    #[must_use]
    pub fn batch_frames(&self) -> u64 {
        self.batch_frames
    }

    /// Messages carried inside those batch frames.
    #[must_use]
    pub fn batch_msgs(&self) -> u64 {
        self.batch_msgs
    }

    /// Sends one message to many members as a single multicast fan-out.
    /// Synchronous mode chains the per-member invocations' round trips
    /// (§2.2); asynchronous mode issues them back-to-back (§5.2).
    ///
    /// The message body and the GIOP frame are each encoded exactly once;
    /// every recipient gets a cheap refcount clone of the one shared
    /// frame.
    fn send_fanout<I: IntoIterator<Item = NodeId>>(
        &mut self,
        mode: crate::group::FanoutMode,
        targets: I,
        msg: &GcsMessage,
    ) {
        // Synchronous fan-outs chain per-member round trips and must go
        // out immediately to keep that timing; only asynchronous
        // fan-outs are batchable.
        if self.batching && mode == crate::group::FanoutMode::Asynchronous {
            for t in targets {
                self.sent += 1;
                self.stage(t, msg);
            }
            return;
        }
        if mode == crate::group::FanoutMode::Synchronous {
            self.out.begin_fanout();
        }
        let body = self.encode_body(msg);
        self.sent += self.orb.oneway_fanout(
            targets,
            &ObjectKey::new(NSO_OBJECT_KEY),
            GCS_OPERATION,
            &body,
            self.out,
        );
        self.out.end_fanout();
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum TimerKind {
    Null,
    Suspicion,
    NackScan,
    ViewChange,
    JoinRetry,
    OrderFlush,
}

#[derive(Clone, Debug)]
struct TimerRoute {
    group: GroupId,
    kind: TimerKind,
    /// For `ViewChange`: the attempt this timer guards. Stale fires are
    /// ignored.
    stamp: u64,
}

#[derive(Debug)]
enum Role {
    Member,
    Joining { contact: NodeId },
}

#[derive(Debug)]
struct VcState {
    attempt: u64,
    coordinator: NodeId,
    candidates: Vec<NodeId>,
    /// Coordinator only: received state responses (self included).
    responses: BTreeMap<NodeId, ContigVector>,
    /// Agreement messages are not NACK-protected; on timeout they are
    /// re-sent this many times before anyone is given up on.
    retries: u32,
    /// Participant only: the coordinator's received-vector from the
    /// proposal, kept so a state response can be re-sent verbatim.
    coord_contig: ContigVector,
}

#[derive(Debug)]
struct GroupState {
    config: GroupConfig,
    role: Role,
    view: View,
    engine: DeliveryEngine,
    next_seq: u64,
    /// Highest view-agreement attempt seen or used.
    attempt: u64,
    last_heard: BTreeMap<NodeId, SimTime>,
    suspects: BTreeSet<NodeId>,
    joiners: BTreeSet<NodeId>,
    leavers: BTreeSet<NodeId>,
    vc: Option<VcState>,
    /// The last install this member sent as coordinator, kept so a
    /// participant whose install was lost (it re-sends its state
    /// response) can be served again.
    last_install: Option<(u64, View, Vec<Arc<DataMsg>>)>,
    last_sent: SimTime,
    last_activity: SimTime,
    liveness_running: bool,
    nack_scheduled: bool,
    /// Sequencer only: ordering records not yet multicast, and the pacing
    /// state of the batching described at [`ORDER_FLUSH_INTERVAL`].
    pending_order: Vec<(NodeId, u64)>,
    last_order_flush: SimTime,
    order_flush_scheduled: bool,
    /// Multicasts requested while a view agreement was in flight. The
    /// old view's delivery set is frozen the moment this member snapshots
    /// its state for the coordinator, so sending into it would let the
    /// message straddle the install (delivered in view *v* by members
    /// that received it early, in *v+1* — or never — by the rest). They
    /// are sent into the new view right after it installs.
    queued_multicasts: Vec<(DeliveryOrder, Bytes)>,
    /// Credit-based send window for this group (see `newtop_flow`):
    /// reset per view, replenished by the piggybacked ack vectors.
    flow: FlowController<NodeId>,
}

impl GroupState {
    fn is_member(&self) -> bool {
        matches!(self.role, Role::Member)
    }
}

/// The group-communication state machine for one node. See the
/// [module docs](self).
pub struct GcsMember {
    node: NodeId,
    clock: LamportClock,
    groups: BTreeMap<GroupId, GroupState>,
    timer_routes: BTreeMap<u64, TimerRoute>,
    tag_base: u64,
    next_tag: u64,
    /// Outputs produced by internal handlers, drained by the public entry
    /// points.
    pending: Vec<GcsOutput>,
    /// Metrics and protocol-event trace for all this node's groups.
    obs: Observability,
}

impl fmt::Debug for GcsMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcsMember")
            .field("node", &self.node)
            .field("groups", &self.groups.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl GcsMember {
    /// Creates the state machine for `node`. Timer tags handed to the
    /// outbox are offset by `tag_base` so several components can share one
    /// node's tag space.
    #[must_use]
    pub fn new(node: NodeId, tag_base: u64) -> Self {
        GcsMember {
            node,
            clock: LamportClock::new(),
            groups: BTreeMap::new(),
            timer_routes: BTreeMap::new(),
            tag_base,
            next_tag: 0,
            pending: Vec::new(),
            obs: Observability::new(),
        }
    }

    /// This member's metrics and protocol-event trace.
    #[must_use]
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Mutable access, e.g. for the owner to fold in transport counters.
    pub fn observability_mut(&mut self) -> &mut Observability {
        &mut self.obs
    }

    /// The flow-control ledger of a group this node belongs to (send
    /// window, in-flight count, shed total, peak).
    #[must_use]
    pub fn flow_of(&self, group: &GroupId) -> Option<&FlowController<NodeId>> {
        self.groups.get(group).map(|g| &g.flow)
    }

    /// Mutable flow-control access for the recovery path: state-transfer
    /// sends are admitted with [`FlowController::admit_replay`] so they
    /// pass the controller without consuming live send credits.
    pub fn flow_of_mut(&mut self, group: &GroupId) -> Option<&mut FlowController<NodeId>> {
        self.groups.get_mut(group).map(|g| &mut g.flow)
    }

    /// Counts one shed multicast in the metrics registry.
    fn note_flow_shed(&mut self, _group: &GroupId) {
        self.obs.metrics.incr("flow.shed");
    }

    /// Raises the `flow.queue_depth_peak` gauge to the group's peak
    /// in-flight count.
    fn note_flow_peak(&mut self, group: &GroupId) {
        let Some(state) = self.groups.get(group) else {
            return;
        };
        let peak = state.flow.peak_in_flight();
        let peak = i64::try_from(peak).unwrap_or(i64::MAX);
        if self.obs.metrics.gauge("flow.queue_depth_peak").unwrap_or(0) < peak {
            self.obs.metrics.set_gauge("flow.queue_depth_peak", peak);
        }
    }

    /// The local node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's current Lamport clock value (shared by all its groups).
    #[must_use]
    pub fn clock_value(&self) -> u64 {
        self.clock.value()
    }

    /// Advances the clock past an externally observed timestamp. A
    /// recovering node calls this with the highest Lamport stamp in its
    /// replayed history (and in each state-transfer chunk), so that
    /// post-recovery sends never reuse a stamp other members already saw
    /// from it — per-sender FIFO must survive the restart.
    pub fn observe_clock(&mut self, ts: u64) {
        self.clock.observe(ts);
    }

    /// The current view of a group, if the node belongs to it.
    #[must_use]
    pub fn view_of(&self, group: &GroupId) -> Option<&View> {
        self.groups.get(group).map(|g| &g.view)
    }

    /// Whether the node is a *full* member of the group (joined and not
    /// left).
    #[must_use]
    pub fn is_member_of(&self, group: &GroupId) -> bool {
        self.groups.get(group).is_some_and(GroupState::is_member)
    }

    /// The groups this node currently belongs to (including ones still
    /// joining).
    pub fn group_ids(&self) -> impl Iterator<Item = &GroupId> {
        self.groups.keys()
    }

    /// Whether `tag` belongs to one of this member's timers.
    #[must_use]
    pub fn owns_tag(&self, tag: u64) -> bool {
        self.timer_routes.contains_key(&tag)
    }

    /// Internal-state summary for debugging and tests.
    #[doc(hidden)]
    #[must_use]
    pub fn diagnostics(&self, group: &GroupId) -> String {
        let Some(state) = self.groups.get(group) else {
            return "no such group".to_owned();
        };
        format!(
            "view={} missing={:?} order_gap={:?} order_len={} buffered={} undelivered={} nack_sched={} vc={} suspects={:?} delivered={:?} contig={:?}",
            state.view,
            state.engine.missing_ranges(),
            state.engine.order_gap(),
            state.engine.order_log_len(),
            state.engine.buffered_count(),
            state.engine.has_undelivered(),
            state.nack_scheduled,
            state.vc.is_some(),
            state.suspects,
            state.engine.delivered_vector(),
            state.engine.contig_vector(),
        )
    }

    // --- group API ---------------------------------------------------------

    /// Creates (statically bootstraps) a group whose full initial
    /// membership is known to every initial member — the configuration
    /// used by all the paper's experiments. Every listed node must call
    /// `create_group` with the same arguments.
    ///
    /// # Errors
    ///
    /// [`GcsError::AlreadyMember`] if this node already has the group;
    /// [`GcsError::BadMembership`] if `members` is empty or omits the
    /// local node.
    pub fn create_group(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        members: Vec<NodeId>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<Vec<GcsOutput>, GcsError> {
        if self.groups.contains_key(&group) {
            return Err(GcsError::AlreadyMember(group));
        }
        if members.is_empty() || !members.contains(&self.node) {
            return Err(GcsError::BadMembership);
        }
        let view = View::new(group.clone(), ViewId(1), members);
        let engine = EngineConfig {
            me: self.node,
            view: view.id(),
            members: view.members().to_vec(),
            protocol: config.ordering,
        }
        .build()?;
        let me = self.node;
        let mut flow = FlowController::new(config.flow_window);
        flow.install_view(view.members().iter().copied().filter(|&m| m != me));
        let state = GroupState {
            config,
            role: Role::Member,
            view: view.clone(),
            engine,
            next_seq: 1,
            attempt: 0,
            last_heard: view.members().iter().map(|&m| (m, now)).collect(),
            suspects: BTreeSet::new(),
            joiners: BTreeSet::new(),
            leavers: BTreeSet::new(),
            vc: None,
            last_install: None,
            last_sent: now,
            last_activity: now,
            liveness_running: false,
            nack_scheduled: false,
            pending_order: Vec::new(),
            last_order_flush: SimTime::ZERO,
            order_flush_scheduled: false,
            queued_multicasts: Vec::new(),
            flow,
        };
        self.groups.insert(group.clone(), state);
        self.obs.record(
            now,
            TraceEvent::ViewInstalled {
                group: group.as_str().to_string(),
                view: view.id().0,
                members: view.len(),
            },
        );
        self.ensure_liveness(&group, now, net);
        Ok(vec![GcsOutput::ViewInstalled {
            group,
            view: view.clone(),
            joined: view.members().to_vec(),
            departed: Vec::new(),
        }])
    }

    /// Starts joining an existing group through `contact`, a current
    /// member. Completion is signalled by a [`GcsOutput::ViewInstalled`]
    /// containing the local node.
    ///
    /// # Errors
    ///
    /// [`GcsError::AlreadyMember`] if this node already has the group.
    pub fn join_group(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        contact: NodeId,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<(), GcsError> {
        if self.groups.contains_key(&group) {
            return Err(GcsError::AlreadyMember(group));
        }
        // Placeholder view until the install arrives.
        let view = View::new(group.clone(), ViewId(0), vec![self.node]);
        let engine = EngineConfig {
            me: self.node,
            view: view.id(),
            members: vec![self.node],
            protocol: config.ordering,
        }
        .build()?;
        let retry = config.view_change_timeout;
        // Singleton placeholder membership: never sheds before the real
        // view installs (a joiner cannot multicast yet anyway).
        let flow = FlowController::new(config.flow_window);
        self.groups.insert(
            group.clone(),
            GroupState {
                config,
                role: Role::Joining { contact },
                view,
                engine,
                next_seq: 1,
                attempt: 0,
                last_heard: BTreeMap::new(),
                suspects: BTreeSet::new(),
                joiners: BTreeSet::new(),
                leavers: BTreeSet::new(),
                vc: None,
                last_install: None,
                last_sent: now,
                last_activity: now,
                liveness_running: false,
                nack_scheduled: false,
                pending_order: Vec::new(),
                last_order_flush: SimTime::ZERO,
                order_flush_scheduled: false,
                queued_multicasts: Vec::new(),
                flow,
            },
        );
        net.send(
            contact,
            &GcsMessage::Join {
                group: group.clone(),
                joiner: self.node,
            },
        );
        self.schedule(&group, TimerKind::JoinRetry, retry, 0, net);
        Ok(())
    }

    /// Gracefully leaves a group. The remaining members run a view change
    /// excluding this node.
    ///
    /// # Errors
    ///
    /// [`GcsError::UnknownGroup`] if the node is not in the group.
    pub fn leave_group(
        &mut self,
        group: &GroupId,
        _now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<Vec<GcsOutput>, GcsError> {
        let state = self
            .groups
            .remove(group)
            .ok_or_else(|| GcsError::UnknownGroup(group.clone()))?;
        if state.is_member() {
            let msg = GcsMessage::Leave {
                group: group.clone(),
                view: state.view.id(),
                leaver: self.node,
            };
            let me = self.node;
            let targets: Vec<NodeId> = state
                .view
                .members()
                .iter()
                .copied()
                .filter(|&m| m != me)
                .collect();
            net.send_fanout(state.config.fanout, targets, &msg);
        }
        self.timer_routes.retain(|_, r| &r.group != group);
        Ok(vec![GcsOutput::LeftGroup {
            group: group.clone(),
        }])
    }

    /// Multicasts `payload` to the group with the requested delivery
    /// guarantee. The message is also looped back to the local node and
    /// surfaces as a [`GcsOutput::Delivered`] once its order is decided.
    ///
    /// # Errors
    ///
    /// [`GcsError::UnknownGroup`] / [`GcsError::NotMember`] when the node
    /// cannot send in this group.
    pub fn multicast(
        &mut self,
        group: &GroupId,
        order: DeliveryOrder,
        payload: Bytes,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Result<(), GcsError> {
        let Some(head) = self.groups.get(group) else {
            return Err(GcsError::UnknownGroup(group.clone()));
        };
        if !head.is_member() {
            return Err(GcsError::NotMember(group.clone()));
        }
        if head.vc.is_some() {
            // A view agreement is in flight: the old view's delivery set
            // is already frozen (see `queued_multicasts`), so hold the
            // message and send it into the new view once it installs —
            // up to the configured bound, beyond which the send is shed.
            let Some(state) = self.groups.get_mut(group) else {
                return Err(GcsError::UnknownGroup(group.clone()));
            };
            if state.queued_multicasts.len() >= state.config.max_queued_multicasts as usize {
                state.flow.note_shed();
                self.note_flow_shed(group);
                return Err(GcsError::Overloaded(group.clone()));
            }
            state.queued_multicasts.push((order, payload));
            return Ok(());
        }
        // Credit gate: admission happens before a sequence number is
        // consumed, so a shed send leaves no gap for receivers to NACK.
        let granted = {
            let Some(state) = self.groups.get_mut(group) else {
                return Err(GcsError::UnknownGroup(group.clone()));
            };
            state.flow.try_acquire().is_granted()
        };
        if !granted {
            self.note_flow_shed(group);
            return Err(GcsError::Overloaded(group.clone()));
        }
        self.note_flow_peak(group);
        let lamport = self.clock.tick();
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return Err(GcsError::UnknownGroup(group.clone()));
        };
        let seq = state.next_seq;
        state.next_seq += 1;
        let msg = DataMsg {
            group: group.clone(),
            view: state.view.id(),
            sender: node,
            seq,
            lamport,
            order,
            deps: DepsVector::from_pairs(state.engine.delivered_vector()),
            acks: state.engine.contig_vector(),
            payload,
        };
        let msg = Arc::new(msg);
        let wire = GcsMessage::Data(Arc::clone(&msg));
        let targets: Vec<NodeId> = state.view.members().to_vec();
        net.send_fanout(state.config.fanout, targets, &wire);
        // Buffer our own copy immediately rather than waiting for the
        // network loopback. The symmetric delivery rule exempts the
        // local member from its stability horizon on the assumption that
        // its own sends are always already buffered — if the loopback
        // lagged behind a peer's equal-timestamp message (heavy load
        // inflates the fan-out's CPU cost past the in-flight latency),
        // that message could be delivered ahead of ours while every
        // other member orders ours first, diverging the total order.
        // The loopback packet later ingests as a duplicate and merely
        // triggers the delivery drain.
        let _ = state.engine.ingest_data(msg);
        state.last_sent = now;
        state.last_activity = now;
        self.ensure_liveness(group, now, net);
        Ok(())
    }

    // --- event entry points --------------------------------------------------

    /// Handles a group-communication message (already unmarshalled by the
    /// owner from the `gcs` ORB operation).
    pub fn on_message(
        &mut self,
        msg: GcsMessage,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) -> Vec<GcsOutput> {
        // A batch envelope is unpacked here and its constituents handled
        // in send order. Decode already rejects nested batches, so the
        // recursion is exactly one level deep.
        if let GcsMessage::Batch(msgs) = msg {
            let mut outputs = Vec::new();
            for m in msgs {
                if !matches!(m, GcsMessage::Batch(_)) {
                    outputs.extend(self.on_message(m, now, net));
                }
            }
            return outputs;
        }
        let Some(group) = msg.group().cloned() else {
            return Vec::new();
        };
        if !self.groups.contains_key(&group) {
            return Vec::new();
        }
        match msg {
            // Handled above; an inner batch cannot decode (nesting is a
            // wire error), so this arm is dead but must stay panic-free.
            GcsMessage::Batch(_) => {}
            GcsMessage::Data(d) => self.on_data(&group, d, now, net),
            GcsMessage::Null(n) => self.on_null(&group, n, now, net),
            GcsMessage::Nack {
                view,
                from,
                sender,
                from_seq,
                to_seq,
                ..
            } => self.on_nack(&group, view, from, sender, from_seq, to_seq, now, net),
            GcsMessage::SeqOrder {
                view,
                sender,
                lamport,
                start,
                entries,
                ..
            } => self.on_seq_order(&group, view, sender, lamport, start, entries, now, net),
            GcsMessage::OrderNack {
                view,
                from,
                from_order_seq,
                ..
            } => self.on_order_nack(&group, view, from, from_order_seq, net),
            GcsMessage::Join { joiner, .. } => self.on_join(&group, joiner, now, net),
            GcsMessage::Leave { view, leaver, .. } => self.on_leave(&group, view, leaver, now, net),
            GcsMessage::Suspect {
                from,
                suspects,
                joiners,
                ..
            } => self.on_suspect(&group, from, suspects, joiners, now, net),
            GcsMessage::Propose {
                attempt,
                coordinator,
                candidates,
                old_view,
                coord_contig,
                ..
            } => self.on_propose(
                &group,
                attempt,
                coordinator,
                candidates,
                old_view,
                coord_contig,
                now,
                net,
            ),
            GcsMessage::StateResp {
                attempt,
                from,
                contig,
                msgs,
                ..
            } => self.on_state_resp(&group, attempt, from, contig, msgs, now, net),
            GcsMessage::Install {
                attempt,
                view,
                msgs,
                ..
            } => self.on_install(&group, attempt, view, msgs, now, net),
        }
        std::mem::take(&mut self.pending)
    }

    /// Handles a fired timer whose tag belongs to this member
    /// ([`Self::owns_tag`]).
    pub fn on_timer(&mut self, tag: u64, now: SimTime, net: &mut GcsNet<'_>) -> Vec<GcsOutput> {
        let Some(route) = self.timer_routes.remove(&tag) else {
            return Vec::new();
        };
        if !self.groups.contains_key(&route.group) {
            return Vec::new();
        }
        match route.kind {
            TimerKind::Null => self.on_null_timer(&route.group, now, net),
            TimerKind::Suspicion => self.on_suspicion_timer(&route.group, now, net),
            TimerKind::NackScan => self.on_nack_timer(&route.group, now, net),
            TimerKind::ViewChange => self.on_vc_timer(&route.group, route.stamp, now, net),
            TimerKind::JoinRetry => self.on_join_retry(&route.group, now, net),
            TimerKind::OrderFlush => self.on_order_flush_timer(&route.group, now, net),
        }
        std::mem::take(&mut self.pending)
    }

    // --- data path -----------------------------------------------------------

    fn on_data(&mut self, group: &GroupId, d: Arc<DataMsg>, now: SimTime, net: &mut GcsNet<'_>) {
        self.clock.observe(d.lamport);
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        // `vc.is_some()`: once this member has snapshotted its state for
        // a view agreement, the old view's delivery set is fixed — late
        // arrivals must not widen it (they would be delivered here but
        // flushed nowhere else, breaking virtual synchrony). Anything
        // a survivor holds reaches everyone through the install union.
        //
        // `contains(d.sender)`: partition sides number their views
        // independently, so a message from a same-numbered foreign view
        // can pass the id check — but the sides' member sets are
        // disjoint, so its sender is never in our view.
        if !state.is_member()
            || d.view != state.view.id()
            || state.vc.is_some()
            || !state.view.contains(d.sender)
        {
            return;
        }
        state.last_heard.insert(d.sender, now);
        state.last_activity = now;
        state.engine.apply_acks(d.sender, &d.acks);
        // The piggybacked ack vector doubles as flow-control credit
        // replenishment: the entry about this node is the contiguous
        // prefix of our multicasts the sender has received.
        if let Some(&(_, upto)) = d.acks.iter().find(|(n, _)| *n == self.node) {
            state.flow.on_ack(d.sender, upto);
        }
        let _ = state.engine.ingest_data(d);
        self.after_ingest(group, now, net);
    }

    fn on_null(&mut self, group: &GroupId, n: NullMsg, now: SimTime, net: &mut GcsNet<'_>) {
        self.clock.observe(n.lamport);
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        // Frozen during a view agreement and guarded against foreign
        // same-numbered views, like `on_data`.
        if !state.is_member()
            || n.view != state.view.id()
            || state.vc.is_some()
            || !state.view.contains(n.sender)
        {
            return;
        }
        state.last_heard.insert(n.sender, now);
        state.engine.note_null(n.sender, n.lamport, n.last_seq);
        state.engine.apply_acks(n.sender, &n.acks);
        // Nulls replenish send credits too — the time-silence mechanism
        // carries flow control for free (see `on_data`).
        if let Some(&(_, upto)) = n.acks.iter().find(|(m, _)| *m == self.node) {
            state.flow.on_ack(n.sender, upto);
        }
        self.after_ingest(group, now, net);
    }

    /// Common post-ingest path: run the sequencer, drain deliveries,
    /// schedule gap repair, keep liveness running.
    fn after_ingest(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let sequencer_duty = {
            self.groups.get(group).is_some_and(|state| {
                state.is_member()
                    && state.config.ordering == OrderProtocol::Asymmetric
                    && state.engine.is_sequencer()
            })
        };
        if sequencer_duty {
            let Some(state) = self.groups.get_mut(group) else {
                return;
            };
            let entries = state.engine.sequencer_poll();
            state.pending_order.extend(entries);
            if !state.pending_order.is_empty() {
                // Rate-limited flush: immediate when the group is quiet,
                // batched when records arrive faster than the interval.
                if now.saturating_since(state.last_order_flush) >= ORDER_FLUSH_INTERVAL {
                    self.flush_order_records(group, now, net);
                } else if !state.order_flush_scheduled {
                    state.order_flush_scheduled = true;
                    self.schedule(group, TimerKind::OrderFlush, ORDER_FLUSH_INTERVAL, 0, net);
                }
            }
        }
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let mut delivered = 0u64;
        for m in state.engine.drain_deliverable() {
            delivered += 1;
            self.pending.push(GcsOutput::Delivered {
                group: group.clone(),
                sender: m.sender,
                order: m.order,
                lamport: m.lamport,
                payload: m.payload.clone(),
            });
        }
        if delivered > 0 {
            self.obs.metrics.add("gcs.delivered", delivered);
        }
        state.engine.gc_stable();
        let needs_scan = !state.nack_scheduled
            && (!state.engine.missing_ranges().is_empty() || state.engine.order_gap().is_some());
        let delay = state.config.nack_delay;
        if needs_scan {
            state.nack_scheduled = true;
            self.schedule(group, TimerKind::NackScan, delay, 0, net);
        }
        self.ensure_liveness(group, now, net);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_nack(
        &mut self,
        group: &GroupId,
        view: ViewId,
        from: NodeId,
        sender: NodeId,
        from_seq: u64,
        to_seq: u64,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let Some(state) = self.groups.get(group) else {
            return;
        };
        if view != state.view.id() || !state.is_member() {
            return;
        }
        let to_seq = to_seq.min(from_seq.saturating_add(MAX_RETRANS_PER_NACK));
        let mut served = 0;
        for seq in from_seq..=to_seq {
            if let Some(m) = state.engine.get_buffered(sender, seq) {
                net.send(from, &GcsMessage::Data(Arc::clone(m)));
                served += 1;
            }
        }
        if served > 0 {
            self.obs.record(
                now,
                TraceEvent::Retransmit {
                    group: group.as_str().to_string(),
                    to: from,
                    count: served,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_seq_order(
        &mut self,
        group: &GroupId,
        view: ViewId,
        sender: NodeId,
        lamport: u64,
        start: u64,
        entries: Vec<(NodeId, u64)>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        self.clock.observe(lamport);
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        // Frozen during a view agreement, like `on_data`. The sequencer
        // check also rejects records from a *foreign* view that happens
        // to share our view number: partition sides number their views
        // independently, and the two sides' member sets are disjoint, so
        // the other side's sequencer is never ours.
        if !state.is_member()
            || view != state.view.id()
            || state.vc.is_some()
            || Some(sender) != state.view.sequencer()
        {
            return;
        }
        state.last_heard.insert(sender, now);
        state.engine.ingest_order(start, &entries);
        self.after_ingest(group, now, net);
    }

    fn on_order_nack(
        &mut self,
        group: &GroupId,
        view: ViewId,
        from: NodeId,
        from_order_seq: u64,
        net: &mut GcsNet<'_>,
    ) {
        let Some(state) = self.groups.get(group) else {
            return;
        };
        if view != state.view.id() || !state.is_member() || !state.engine.is_sequencer() {
            return;
        }
        let (start, entries) = state
            .engine
            .order_log_slice(from_order_seq, MAX_ORDER_ENTRIES_PER_NACK);
        if entries.is_empty() {
            return;
        }
        net.send(
            from,
            &GcsMessage::SeqOrder {
                group: group.clone(),
                view,
                sender: self.node,
                lamport: self.clock.value(),
                start,
                entries,
            },
        );
    }

    // --- membership events -----------------------------------------------------

    fn on_join(&mut self, group: &GroupId, joiner: NodeId, now: SimTime, net: &mut GcsNet<'_>) {
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        if !state.is_member() || state.view.contains(joiner) {
            return;
        }
        if state.joiners.insert(joiner) {
            self.initiate_view_change(group, now, net);
        }
    }

    fn on_leave(
        &mut self,
        group: &GroupId,
        view: ViewId,
        leaver: NodeId,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        if !state.is_member() || view != state.view.id() || !state.view.contains(leaver) {
            return;
        }
        if state.leavers.insert(leaver) {
            self.initiate_view_change(group, now, net);
        }
    }

    fn on_suspect(
        &mut self,
        group: &GroupId,
        from: NodeId,
        suspects: Vec<NodeId>,
        joiners: Vec<NodeId>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        if !state.is_member() {
            return;
        }
        state.last_heard.insert(from, now);
        let mut changed = false;
        for s in suspects {
            if s != node && state.view.contains(s) {
                changed |= state.suspects.insert(s);
            }
        }
        for j in joiners {
            if !state.view.contains(j) {
                changed |= state.joiners.insert(j);
            }
        }
        if changed {
            self.initiate_view_change(group, now, net);
        }
    }

    /// Computes the next candidate membership and either coordinates or
    /// reports to the coordinator.
    fn initiate_view_change(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        if !state.is_member() {
            return;
        }
        let mut candidates: Vec<NodeId> = state
            .view
            .members()
            .iter()
            .copied()
            .filter(|m| !state.suspects.contains(m) && !state.leavers.contains(m))
            .chain(state.joiners.iter().copied())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() || !candidates.contains(&node) {
            return;
        }
        // Already agreeing on exactly this membership? Let it run.
        if let Some(vc) = &state.vc {
            if vc.candidates == candidates {
                return;
            }
        }
        let Some(&coordinator) = candidates.first() else {
            return;
        };
        if coordinator == node {
            self.start_agreement(group, candidates, now, net);
        } else {
            // Report what we know and arm a timeout in case the
            // coordinator never acts.
            let msg = GcsMessage::Suspect {
                group: group.clone(),
                view: state.view.id(),
                from: node,
                suspects: state.suspects.iter().copied().collect(),
                joiners: state.joiners.iter().copied().collect(),
            };
            net.send(coordinator, &msg);
            let timeout = state.config.view_change_timeout;
            let stamp = state.attempt + 1;
            self.schedule(group, TimerKind::ViewChange, timeout, stamp, net);
        }
    }

    fn start_agreement(
        &mut self,
        group: &GroupId,
        candidates: Vec<NodeId>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        state.attempt += 1;
        let attempt = state.attempt;
        let contig = state.engine.contig_vector();
        let mut responses = BTreeMap::new();
        responses.insert(node, contig.clone());
        state.vc = Some(VcState {
            attempt,
            coordinator: node,
            candidates: candidates.clone(),
            responses,
            retries: 0,
            coord_contig: Vec::new(),
        });
        let msg = GcsMessage::Propose {
            group: group.clone(),
            attempt,
            coordinator: node,
            candidates: candidates.clone(),
            old_view: state.view.id(),
            coord_contig: contig,
        };
        let fanout = state.config.fanout;
        net.send_fanout(
            fanout,
            candidates.iter().copied().filter(|&c| c != node),
            &msg,
        );
        let timeout = state.config.view_change_timeout;
        self.schedule(group, TimerKind::ViewChange, timeout, attempt, net);
        self.ensure_liveness(group, now, net);
        // Single-survivor case resolves immediately.
        self.maybe_finish_agreement(group, now, net);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_propose(
        &mut self,
        group: &GroupId,
        attempt: u64,
        coordinator: NodeId,
        candidates: Vec<NodeId>,
        old_view: ViewId,
        coord_contig: ContigVector,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        if !candidates.contains(&node) {
            return;
        }
        if state.is_member() && old_view != state.view.id() {
            return; // proposal against a view we no longer hold
        }
        if attempt < state.attempt {
            return; // stale attempt
        }
        if let Some(vc) = &state.vc {
            if (attempt, coordinator) < (vc.attempt, vc.coordinator) {
                return;
            }
        }
        state.attempt = attempt;
        state.last_heard.insert(coordinator, now);
        state.vc = Some(VcState {
            attempt,
            coordinator,
            candidates,
            responses: BTreeMap::new(),
            retries: 0,
            coord_contig: coord_contig.clone(),
        });
        let (contig, msgs) = if state.is_member() {
            (
                state.engine.contig_vector(),
                state.engine.export_msgs_beyond(&coord_contig),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        net.send(
            coordinator,
            &GcsMessage::StateResp {
                group: group.clone(),
                attempt,
                from: node,
                contig,
                msgs,
            },
        );
        let timeout = state.config.view_change_timeout;
        self.schedule(group, TimerKind::ViewChange, timeout, attempt, net);
        self.ensure_liveness(group, now, net);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_state_resp(
        &mut self,
        group: &GroupId,
        attempt: u64,
        from: NodeId,
        contig: ContigVector,
        msgs: Vec<Arc<DataMsg>>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        state.last_heard.insert(from, now);
        {
            let Some(vc) = state.vc.as_mut() else {
                // The agreement already finished here; if this responder
                // is still waiting, its install was lost — serve it
                // again.
                if let Some((last_attempt, view, msgs)) = state.last_install.clone() {
                    if last_attempt == attempt && view.contains(from) {
                        net.send(
                            from,
                            &GcsMessage::Install {
                                group: group.clone(),
                                attempt,
                                view,
                                msgs,
                            },
                        );
                    }
                }
                return;
            };
            if vc.coordinator != node || vc.attempt != attempt {
                return;
            }
            vc.responses.insert(from, contig);
        }
        if state.is_member() {
            state.engine.ingest_union(msgs);
        }
        self.maybe_finish_agreement(group, now, net);
    }

    /// Coordinator: if every candidate has responded, build and send the
    /// install (and apply it locally).
    fn maybe_finish_agreement(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        let (new_view, union, attempt) = {
            let Some(state) = self.groups.get(group) else {
                return;
            };
            let Some(vc) = state.vc.as_ref() else {
                return;
            };
            if vc.coordinator != node {
                return;
            }
            if !vc.candidates.iter().all(|c| vc.responses.contains_key(c)) {
                return;
            }
            // Ship every message above the pointwise minimum of the
            // responders' received vectors.
            let mut floor: BTreeMap<NodeId, u64> = BTreeMap::new();
            let mut first = true;
            for contig in vc.responses.values() {
                let as_map: BTreeMap<NodeId, u64> = contig.iter().copied().collect();
                if first {
                    floor = as_map;
                    first = false;
                } else {
                    let keys: BTreeSet<NodeId> =
                        floor.keys().chain(as_map.keys()).copied().collect();
                    floor = keys
                        .into_iter()
                        .map(|k| {
                            let a = floor.get(&k).copied().unwrap_or(0);
                            let b = as_map.get(&k).copied().unwrap_or(0);
                            (k, a.min(b))
                        })
                        .collect();
                }
            }
            let floor_vec: ContigVector = floor.into_iter().collect();
            let union = state.engine.export_msgs_beyond(&floor_vec);
            let new_view = View::new(group.clone(), state.view.id().next(), vc.candidates.clone());
            (new_view, union, vc.attempt)
        };
        let msg = GcsMessage::Install {
            group: group.clone(),
            attempt,
            view: new_view.clone(),
            msgs: union.clone(),
        };
        let Some(fanout) = self.groups.get(group).map(|s| s.config.fanout) else {
            return;
        };
        net.send_fanout(
            fanout,
            new_view.members().iter().copied().filter(|&c| c != node),
            &msg,
        );
        self.apply_install(group, new_view.clone(), union.clone(), now, net);
        // Kept *after* the local install (which resets per-view state) so
        // a participant whose install was lost can be served again.
        if let Some(state) = self.groups.get_mut(group) {
            state.last_install = Some((attempt, new_view, union));
        }
    }

    fn on_install(
        &mut self,
        group: &GroupId,
        attempt: u64,
        view: View,
        msgs: Vec<Arc<DataMsg>>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        {
            let Some(state) = self.groups.get_mut(group) else {
                return;
            };
            if !view.contains(self.node) {
                return;
            }
            if state.is_member() && view.id() <= state.view.id() {
                return; // stale install
            }
            state.attempt = state.attempt.max(attempt);
        }
        self.apply_install(group, view, msgs, now, net);
    }

    /// Flush the old view, install the new one.
    fn apply_install(
        &mut self,
        group: &GroupId,
        view: View,
        msgs: Vec<Arc<DataMsg>>,
        now: SimTime,
        net: &mut GcsNet<'_>,
    ) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let was_member = state.is_member();
        if was_member {
            state.engine.ingest_union(msgs);
            let mut delivered = 0u64;
            for m in state.engine.flush_remaining() {
                delivered += 1;
                self.pending.push(GcsOutput::Delivered {
                    group: group.clone(),
                    sender: m.sender,
                    order: m.order,
                    lamport: m.lamport,
                    payload: m.payload.clone(),
                });
            }
            if delivered > 0 {
                self.obs.metrics.add("gcs.delivered", delivered);
            }
        }
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let old_view = std::mem::replace(&mut state.view, view.clone());
        let joined = if was_member {
            view.members_not_in(&old_view)
        } else {
            view.members().to_vec()
        };
        let departed = if was_member {
            old_view.members_not_in(&view)
        } else {
            Vec::new()
        };
        // A view that excludes the local node cannot reach here from the
        // network (`on_install` filters it), so a build failure marks a
        // hostile or corrupted install: drop it rather than panic.
        let Ok(engine) = (EngineConfig {
            me: node,
            view: view.id(),
            members: view.members().to_vec(),
            protocol: state.config.ordering,
        })
        .build() else {
            return;
        };
        state.engine = engine;
        state.role = Role::Member;
        state.next_seq = 1;
        // New view, new flow ledger: sends renumber from 1 and credits
        // are granted against the new membership.
        state
            .flow
            .install_view(view.members().iter().copied().filter(|&m| m != node));
        state.last_heard = view.members().iter().map(|&m| (m, now)).collect();
        state.suspects.clear();
        state.leavers.clear();
        state.joiners.retain(|j| !view.contains(*j));
        state.vc = None;
        state.last_activity = now;
        state.liveness_running = false;
        state.pending_order.clear();
        state.order_flush_scheduled = false;
        // A newer view supersedes any install this member coordinated
        // earlier (keep it only if it IS this install, set right after).
        state.last_install = None;
        let more_joiners = !state.joiners.is_empty();
        self.obs.record(
            now,
            TraceEvent::ViewInstalled {
                group: group.as_str().to_string(),
                view: view.id().0,
                members: view.len(),
            },
        );
        self.pending.push(GcsOutput::ViewInstalled {
            group: group.clone(),
            view,
            joined,
            departed,
        });
        self.ensure_liveness(group, now, net);
        // Multicasts requested while the agreement ran go out now, into
        // the view that will actually deliver them.
        let queued = match self.groups.get_mut(group) {
            Some(state) => std::mem::take(&mut state.queued_multicasts),
            None => Vec::new(),
        };
        for (order, payload) in queued {
            let _ = self.multicast(group, order, payload, now, net);
        }
        if more_joiners {
            self.initiate_view_change(group, now, net);
        }
    }

    // --- timers ------------------------------------------------------------------

    fn on_null_timer(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        if !self.should_run_liveness(group, now) {
            if let Some(state) = self.groups.get_mut(group) {
                state.liveness_running = false;
            }
            return;
        }
        let Some((period, last_sent)) = self
            .groups
            .get(group)
            .map(|s| (s.config.time_silence, s.last_sent))
        else {
            return;
        };
        if now.saturating_since(last_sent) >= period {
            let lamport = self.clock.tick();
            let Some(state) = self.groups.get_mut(group) else {
                return;
            };
            let msg = GcsMessage::Null(NullMsg {
                group: group.clone(),
                view: state.view.id(),
                sender: node,
                lamport,
                last_seq: state.next_seq - 1,
                acks: state.engine.contig_vector(),
            });
            let targets: Vec<NodeId> = state
                .view
                .members()
                .iter()
                .copied()
                .filter(|&m| m != node)
                .collect();
            net.send_fanout(state.config.fanout, targets, &msg);
            state.last_sent = now;
            self.obs.record(
                now,
                TraceEvent::TimeSilenceNull {
                    group: group.as_str().to_string(),
                },
            );
        }
        self.schedule(group, TimerKind::Null, period, 0, net);
    }

    fn on_suspicion_timer(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        if !self.should_run_liveness(group, now) {
            if let Some(state) = self.groups.get_mut(group) {
                state.liveness_running = false;
            }
            return;
        }
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let timeout = state.config.suspicion_timeout();
        let mut newly_suspected = Vec::new();
        for &m in state.view.members() {
            if m == node || state.suspects.contains(&m) {
                continue;
            }
            let heard = state.last_heard.get(&m).copied().unwrap_or(SimTime::ZERO);
            if now.saturating_since(heard) > timeout {
                state.suspects.insert(m);
                newly_suspected.push(m);
            }
        }
        let period = state.config.time_silence;
        for &suspect in &newly_suspected {
            self.obs.record(
                now,
                TraceEvent::Suspected {
                    group: group.as_str().to_string(),
                    suspect,
                },
            );
        }
        self.schedule(group, TimerKind::Suspicion, period, 0, net);
        if !newly_suspected.is_empty() {
            self.initiate_view_change(group, now, net);
        }
    }

    fn on_nack_timer(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        state.nack_scheduled = false;
        if !state.is_member() {
            return;
        }
        let view = state.view.id();
        let ranges = state.engine.missing_ranges();
        for &(sender, from, to) in &ranges {
            net.send(
                sender,
                &GcsMessage::Nack {
                    group: group.clone(),
                    view,
                    from: node,
                    sender,
                    from_seq: from,
                    to_seq: to,
                },
            );
            self.obs.record(
                now,
                TraceEvent::NackSent {
                    group: group.as_str().to_string(),
                    to: sender,
                    count: (to.saturating_sub(from) + 1) as usize,
                },
            );
        }
        let order_gap = state.engine.order_gap();
        if let Some(from_pos) = order_gap {
            if let Some(seq) = state.view.sequencer() {
                if seq != node {
                    net.send(
                        seq,
                        &GcsMessage::OrderNack {
                            group: group.clone(),
                            view,
                            from: node,
                            from_order_seq: from_pos,
                        },
                    );
                }
            }
        }
        let delay = state.config.nack_delay;
        if !ranges.is_empty() || order_gap.is_some() {
            state.nack_scheduled = true;
            self.schedule(group, TimerKind::NackScan, delay, 0, net);
        }
    }

    fn on_vc_timer(&mut self, group: &GroupId, stamp: u64, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        match state.vc.as_mut() {
            Some(vc) if vc.attempt != stamp => {} // superseded
            Some(vc) if vc.coordinator == node => {
                let missing: Vec<NodeId> = vc
                    .candidates
                    .iter()
                    .copied()
                    .filter(|c| !vc.responses.contains_key(c))
                    .collect();
                if vc.retries < VC_RETRIES {
                    // The proposal (or a response) may simply have been
                    // lost: re-propose to the silent candidates first.
                    vc.retries += 1;
                    let attempt = vc.attempt;
                    let msg = GcsMessage::Propose {
                        group: group.clone(),
                        attempt,
                        coordinator: node,
                        candidates: vc.candidates.clone(),
                        old_view: state.view.id(),
                        coord_contig: state.engine.contig_vector(),
                    };
                    for m in missing {
                        net.send(m, &msg);
                    }
                    let timeout = state.config.view_change_timeout;
                    self.schedule(group, TimerKind::ViewChange, timeout, stamp, net);
                    return;
                }
                // Still silent after the retries: drop them and go again.
                for m in missing {
                    if m != node && state.suspects.insert(m) {
                        state.joiners.remove(&m);
                        self.obs.record(
                            now,
                            TraceEvent::Suspected {
                                group: group.as_str().to_string(),
                                suspect: m,
                            },
                        );
                    }
                }
                state.vc = None;
                self.initiate_view_change(group, now, net);
            }
            Some(vc) => {
                let retry = vc.retries < VC_RETRIES;
                let attempt = vc.attempt;
                let coordinator = vc.coordinator;
                let coord_contig = vc.coord_contig.clone();
                if retry {
                    vc.retries += 1;
                }
                if retry {
                    // Our response (or the install) may have been lost:
                    // re-send the state response and wait another round.
                    let (contig, msgs) = if state.is_member() {
                        (
                            state.engine.contig_vector(),
                            state.engine.export_msgs_beyond(&coord_contig),
                        )
                    } else {
                        (Vec::new(), Vec::new())
                    };
                    net.send(
                        coordinator,
                        &GcsMessage::StateResp {
                            group: group.clone(),
                            attempt,
                            from: node,
                            contig,
                            msgs,
                        },
                    );
                    let timeout = state.config.view_change_timeout;
                    self.schedule(group, TimerKind::ViewChange, timeout, stamp, net);
                    return;
                }
                if !state.is_member() {
                    // A joiner cannot run the change itself; fall back to
                    // join retries.
                    state.vc = None;
                    return;
                }
                // The coordinator went quiet: suspect it and re-run.
                if state.suspects.insert(coordinator) {
                    self.obs.record(
                        now,
                        TraceEvent::Suspected {
                            group: group.as_str().to_string(),
                            suspect: coordinator,
                        },
                    );
                }
                state.vc = None;
                self.initiate_view_change(group, now, net);
            }
            None => {
                if state.attempt >= stamp || !state.is_member() {
                    return; // progress happened since the timer was armed
                }
                if state.suspects.is_empty() && state.joiners.is_empty() && state.leavers.is_empty()
                {
                    return;
                }
                // We reported to a coordinator that never acted: suspect
                // it and go again.
                let alive: Vec<NodeId> = state
                    .view
                    .members()
                    .iter()
                    .copied()
                    .filter(|m| !state.suspects.contains(m) && !state.leavers.contains(m))
                    .collect();
                if let Some(&coord) = alive.first() {
                    if coord != node && state.suspects.insert(coord) {
                        self.obs.record(
                            now,
                            TraceEvent::Suspected {
                                group: group.as_str().to_string(),
                                suspect: coord,
                            },
                        );
                    }
                }
                self.initiate_view_change(group, now, net);
            }
        }
    }

    /// Multicasts the sequencer's buffered ordering records as one
    /// `SeqOrder`.
    fn flush_order_records(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        let lamport = self.clock.tick();
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        let entries = std::mem::take(&mut state.pending_order);
        state.last_order_flush = now;
        state.order_flush_scheduled = false;
        if entries.is_empty() {
            return;
        }
        let records = entries.len();
        let start = state.engine.order_log_len() - entries.len() as u64 + 1;
        let wire = GcsMessage::SeqOrder {
            group: group.clone(),
            view: state.view.id(),
            sender: node,
            lamport,
            start,
            entries,
        };
        let targets: Vec<NodeId> = state
            .view
            .members()
            .iter()
            .copied()
            .filter(|&m| m != node)
            .collect();
        net.send_fanout(state.config.fanout, targets, &wire);
        state.last_sent = now;
        self.obs.record(
            now,
            TraceEvent::SequencerBatch {
                group: group.as_str().to_string(),
                records,
            },
        );
        self.obs.metrics.add("gcs.order_records", records as u64);
    }

    fn on_order_flush_timer(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        state.order_flush_scheduled = false;
        if !state.is_member() || !state.engine.is_sequencer() {
            state.pending_order.clear();
            return;
        }
        self.flush_order_records(group, now, net);
    }

    fn on_join_retry(&mut self, group: &GroupId, _now: SimTime, net: &mut GcsNet<'_>) {
        let node = self.node;
        let Some(state) = self.groups.get(group) else {
            return;
        };
        let Role::Joining { contact } = state.role else {
            return; // joined already
        };
        let retry = state.config.view_change_timeout;
        if state.vc.is_none() {
            net.send(
                contact,
                &GcsMessage::Join {
                    group: group.clone(),
                    joiner: node,
                },
            );
        }
        self.schedule(group, TimerKind::JoinRetry, retry, 0, net);
    }

    // --- liveness helpers -----------------------------------------------------------

    fn should_run_liveness(&self, group: &GroupId, now: SimTime) -> bool {
        let Some(state) = self.groups.get(group) else {
            return false;
        };
        if !state.is_member() {
            return false;
        }
        match state.config.liveness {
            Liveness::Lively => true,
            Liveness::EventDriven => {
                state.engine.has_undelivered()
                    || state.vc.is_some()
                    || now.saturating_since(state.last_activity)
                        < state.config.time_silence * EVENT_DRIVEN_LINGER
            }
        }
    }

    /// Starts the null/suspicion timers if the group should be live and
    /// they are not already running.
    fn ensure_liveness(&mut self, group: &GroupId, now: SimTime, net: &mut GcsNet<'_>) {
        if !self.should_run_liveness(group, now) {
            return;
        }
        let Some(state) = self.groups.get_mut(group) else {
            return;
        };
        if state.liveness_running {
            return;
        }
        state.liveness_running = true;
        let period = state.config.time_silence;
        self.schedule(group, TimerKind::Null, period, 0, net);
        self.schedule(group, TimerKind::Suspicion, period, 0, net);
    }

    fn schedule(
        &mut self,
        group: &GroupId,
        kind: TimerKind,
        delay: std::time::Duration,
        stamp: u64,
        net: &mut GcsNet<'_>,
    ) {
        let tag = self.tag_base + self.next_tag;
        self.next_tag += 1;
        self.timer_routes.insert(
            tag,
            TimerRoute {
                group: group.clone(),
                kind,
                stamp,
            },
        );
        net.out.set_timer(delay, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn net_parts(node: NodeId) -> (OrbCore, Outbox) {
        (OrbCore::new(node), Outbox::detached(0))
    }

    #[test]
    fn create_group_validates_membership() {
        let mut m = GcsMember::new(n(0), 0);
        let (mut orb, mut out) = net_parts(n(0));
        let mut net = GcsNet::new(&mut orb, &mut out);
        assert_eq!(
            m.create_group(
                GroupId::new("g"),
                GroupConfig::default(),
                vec![n(1), n(2)],
                SimTime::ZERO,
                &mut net
            ),
            Err(GcsError::BadMembership)
        );
        assert_eq!(
            m.create_group(
                GroupId::new("g"),
                GroupConfig::default(),
                vec![],
                SimTime::ZERO,
                &mut net
            ),
            Err(GcsError::BadMembership)
        );
        let outs = m
            .create_group(
                GroupId::new("g"),
                GroupConfig::default(),
                vec![n(0), n(1)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        assert!(matches!(&outs[0], GcsOutput::ViewInstalled { view, .. } if view.len() == 2));
        assert!(matches!(
            m.create_group(
                GroupId::new("g"),
                GroupConfig::default(),
                vec![n(0)],
                SimTime::ZERO,
                &mut net
            ),
            Err(GcsError::AlreadyMember(_))
        ));
    }

    #[test]
    fn multicast_requires_membership() {
        let mut m = GcsMember::new(n(0), 0);
        let (mut orb, mut out) = net_parts(n(0));
        let mut net = GcsNet::new(&mut orb, &mut out);
        assert!(matches!(
            m.multicast(
                &GroupId::new("nope"),
                DeliveryOrder::Total,
                Bytes::new(),
                SimTime::ZERO,
                &mut net
            ),
            Err(GcsError::UnknownGroup(_))
        ));
    }

    #[test]
    fn multicast_sheds_when_the_send_window_is_exhausted() {
        let mut m = GcsMember::new(n(0), 0);
        let (mut orb, mut out) = net_parts(n(0));
        let mut net = GcsNet::new(&mut orb, &mut out);
        let g = GroupId::new("g");
        m.create_group(
            g.clone(),
            GroupConfig::peer().with_flow_window(2),
            vec![n(0), n(1)],
            SimTime::ZERO,
            &mut net,
        )
        .unwrap();
        for _ in 0..2 {
            m.multicast(
                &g,
                DeliveryOrder::Total,
                Bytes::from_static(b"x"),
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        }
        assert_eq!(
            m.multicast(
                &g,
                DeliveryOrder::Total,
                Bytes::from_static(b"x"),
                SimTime::ZERO,
                &mut net
            ),
            Err(GcsError::Overloaded(g.clone()))
        );
        assert_eq!(m.observability().metrics.counter("flow.shed"), 1);
        assert_eq!(
            m.observability().metrics.gauge("flow.queue_depth_peak"),
            Some(2)
        );

        // A data message from the peer acking our first send replenishes
        // one credit.
        let peer_msg = DataMsg {
            group: g.clone(),
            view: m.view_of(&g).unwrap().id(),
            sender: n(1),
            seq: 1,
            lamport: 5,
            order: DeliveryOrder::Causal,
            deps: DepsVector::from_pairs(Vec::new()),
            acks: vec![(n(0), 1)],
            payload: Bytes::from_static(b"y"),
        };
        m.on_message(
            GcsMessage::Data(Arc::new(peer_msg)),
            SimTime::ZERO,
            &mut net,
        );
        assert_eq!(m.flow_of(&g).unwrap().in_flight(), 1);
        m.multicast(
            &g,
            DeliveryOrder::Total,
            Bytes::from_static(b"z"),
            SimTime::ZERO,
            &mut net,
        )
        .unwrap();
    }

    #[test]
    fn multicast_fans_out_to_every_member_including_self() {
        let mut m = GcsMember::new(n(0), 0);
        let mut orb = OrbCore::new(n(0));
        let mut out = Outbox::detached(0);
        {
            let mut net = GcsNet::new(&mut orb, &mut out);
            m.create_group(
                GroupId::new("g"),
                GroupConfig::peer(),
                vec![n(0), n(1), n(2)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
            m.multicast(
                &GroupId::new("g"),
                DeliveryOrder::Total,
                Bytes::from_static(b"x"),
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        }
        let parts = out.into_parts();
        let dests: Vec<u32> = parts.sends.iter().map(|(d, _)| d.index()).collect();
        // One data send per member (0, 1, 2), loopback included.
        assert!(dests.contains(&0));
        assert!(dests.contains(&1));
        assert!(dests.contains(&2));
    }

    #[test]
    fn lively_groups_arm_timers_at_creation() {
        let mut m = GcsMember::new(n(0), 1000);
        let mut orb = OrbCore::new(n(0));
        let mut out = Outbox::detached(0);
        {
            let mut net = GcsNet::new(&mut orb, &mut out);
            m.create_group(
                GroupId::new("g"),
                GroupConfig::peer(),
                vec![n(0), n(1)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        }
        let parts = out.into_parts();
        assert_eq!(parts.timer_sets.len(), 2, "null + suspicion timers");
        for (_, _, tag) in &parts.timer_sets {
            assert!(m.owns_tag(*tag));
            assert!(*tag >= 1000, "tags offset by the base");
        }
    }

    #[test]
    fn event_driven_groups_stay_quiet_until_traffic() {
        let mut m = GcsMember::new(n(0), 0);
        let mut orb = OrbCore::new(n(0));
        let mut out = Outbox::detached(0);
        {
            let mut net = GcsNet::new(&mut orb, &mut out);
            m.create_group(
                GroupId::new("g"),
                GroupConfig::request_reply(),
                vec![n(0), n(1)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        }
        // An event-driven group at creation has had "activity" at t=0, so
        // the linger keeps liveness on; advance past the linger window.
        let linger = GroupConfig::request_reply().time_silence * EVENT_DRIVEN_LINGER;
        assert!(m.should_run_liveness(&GroupId::new("g"), SimTime::ZERO));
        assert!(!m.should_run_liveness(&GroupId::new("g"), SimTime::ZERO + linger * 2));
    }

    #[test]
    fn leave_group_notifies_peers_and_cleans_up() {
        let mut m = GcsMember::new(n(0), 0);
        let mut orb = OrbCore::new(n(0));
        let mut out = Outbox::detached(0);
        {
            let mut net = GcsNet::new(&mut orb, &mut out);
            m.create_group(
                GroupId::new("g"),
                GroupConfig::default(),
                vec![n(0), n(1), n(2)],
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
            let outs = m
                .leave_group(&GroupId::new("g"), SimTime::ZERO, &mut net)
                .unwrap();
            assert!(matches!(&outs[0], GcsOutput::LeftGroup { .. }));
        }
        assert!(m.view_of(&GroupId::new("g")).is_none());
        assert!(m
            .leave_group(
                &GroupId::new("g"),
                SimTime::ZERO,
                &mut GcsNet::new(&mut orb, &mut out)
            )
            .is_err());
    }

    fn data_msg(seq: u64) -> GcsMessage {
        GcsMessage::Data(Arc::new(DataMsg {
            group: GroupId::new("g"),
            view: ViewId(1),
            sender: n(0),
            seq,
            lamport: 10 + seq,
            order: DeliveryOrder::Total,
            deps: DepsVector::new(),
            acks: vec![(n(0), seq)],
            payload: Bytes::from(format!("payload-{seq}")),
        }))
    }

    #[test]
    fn single_staged_send_flushes_byte_identical_to_unbatched() {
        // A destination holding exactly one staged message must get the
        // plain frame — the whole wire packet, GIOP header included,
        // byte-identical to what an unbatched context sends.
        let msg = data_msg(1);

        let (mut orb_a, mut out_a) = net_parts(n(0));
        let mut plain = GcsNet::new(&mut orb_a, &mut out_a);
        plain.send(n(1), &msg);
        drop(plain);

        let (mut orb_b, mut out_b) = net_parts(n(0));
        let mut batched = GcsNet::with_batching(&mut orb_b, &mut out_b, true);
        batched.send(n(1), &msg);
        batched.flush();
        assert_eq!(batched.batch_frames(), 0, "one message must not wrap");
        drop(batched);

        let (sa, sb) = (out_a.into_parts().sends, out_b.into_parts().sends);
        assert_eq!(sa.len(), 1);
        assert_eq!(
            sa, sb,
            "batching=on with one staged send changed the wire bytes"
        );
    }

    #[test]
    fn batch_frame_unbatches_to_byte_identical_messages() {
        // Several staged messages for one destination pack into a single
        // Batch frame; unpacking it must yield constituents whose
        // individual encodings are byte-identical to the originals'.
        let msgs = [data_msg(1), data_msg(2), data_msg(3)];

        let (mut orb, mut out) = net_parts(n(0));
        let mut net = GcsNet::with_batching(&mut orb, &mut out, true);
        for m in &msgs {
            net.send(n(1), m);
        }
        net.flush();
        assert_eq!(net.batch_frames(), 1);
        assert_eq!(net.batch_msgs(), 3);
        drop(net);

        let sends = out.into_parts().sends;
        assert_eq!(sends.len(), 1, "three staged sends must share one frame");

        // Receive the frame through a peer ORB to recover the GIOP body.
        let pkt = newtop_net::sim::Packet {
            src: n(0),
            dst: n(1),
            payload: sends[0].1.clone(),
        };
        let mut peer = OrbCore::new(n(1));
        let mut peer_out = Outbox::detached(0);
        let Some(newtop_orb::orb::OrbIncoming::Upcall { body, .. }) =
            peer.handle_packet(&pkt, &mut peer_out)
        else {
            panic!("batch frame did not arrive as a oneway upcall");
        };

        use newtop_orb::cdr::CdrDecode as _;
        let mut dec = newtop_orb::cdr::CdrDecoder::new(&body);
        let GcsMessage::Batch(unpacked) = GcsMessage::decode(&mut dec).unwrap() else {
            panic!("multi-message flush must produce a Batch envelope");
        };
        assert_eq!(unpacked.len(), msgs.len());
        for (original, recovered) in msgs.iter().zip(&unpacked) {
            assert_eq!(original, recovered);
            let encode = |m: &GcsMessage| {
                let mut enc = newtop_orb::cdr::CdrEncoder::new();
                m.encode(&mut enc);
                enc.finish()
            };
            assert_eq!(
                encode(original),
                encode(recovered),
                "unbatched constituent re-encodes to different bytes"
            );
        }
    }
}
