/root/repo/target/debug/deps/partitions-7eb32687e3bd944d.d: tests/tests/partitions.rs Cargo.toml

/root/repo/target/debug/deps/libpartitions-7eb32687e3bd944d.rmeta: tests/tests/partitions.rs Cargo.toml

tests/tests/partitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
