/root/repo/target/debug/deps/newtop-7bb2fc6cbd391008.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

/root/repo/target/debug/deps/newtop-7bb2fc6cbd391008: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/nso.rs:
crates/core/src/proxy.rs:
crates/core/src/simnode.rs:
