//! Experiment harness for the NewTop reproduction.
//!
//! This crate regenerates the paper's evaluation (§5): workload drivers
//! for the three interaction modes, the two network environments (LAN and
//! the Newcastle/London/Pisa Internet placement), metric collection, and
//! one function per table/figure in [`figures`]. The bench targets in
//! `newtop-bench` are thin wrappers that print these results in the
//! paper's format.
//!
//! * [`plain`] — the plain-CORBA baseline (no group service): Table 1 and
//!   the non-replicated reference curves.
//! * [`apps`] — NSO applications: replicated servers, closed-loop
//!   request-reply clients (with §4.1 rebind-and-retry), and peer
//!   participants.
//! * [`scenario`] — placements, scenario runners and metric extraction.
//! * [`figures`] — per-exhibit reproduction functions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod figures;
pub mod plain;
pub mod scale;
pub mod scenario;

pub use scale::{run_scale, RegionMatrix, ScaleResult, ScaleScenario};
pub use scenario::{PeerResult, Placement, RequestReplyResult};
